package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// simParStep is one pre-drawn action of a synthetic board process. Every
// random decision is drawn before the run starts so the sequential and
// parallel engines replay the identical schedule regardless of how their
// goroutines interleave.
type simParStep struct {
	sleep Duration
	emit  bool // emit a trace event after the sleep (a sync point when traced)
	sync  bool // park at a synchronization point after the sleep
	drop  bool // close and reopen the compute window (EndCompute/BeginCompute)
}

// simParSchedule is a full pre-drawn workload: per-board step lists, an
// untagged host process's sleep list, and a set of timer firings.
type simParSchedule struct {
	boards [][]simParStep
	host   []Duration
	timers []Duration
}

// drawSimParSchedule derives a workload from the seed. Durations are chosen
// around the lookahead scale so phases form, horizons bind, and parks issue
// at ties as well as in the open interior.
func drawSimParSchedule(seed int64, domains int, lookahead Duration) simParSchedule {
	rng := rand.New(rand.NewSource(seed))
	dur := func() Duration {
		// Mix sub-lookahead, near-lookahead, and multi-lookahead sleeps,
		// including exact multiples to provoke same-instant ties.
		switch rng.Intn(4) {
		case 0:
			return Duration(rng.Int63n(int64(lookahead)/2 + 1))
		case 1:
			return lookahead + Duration(rng.Int63n(int64(lookahead)+1)) - lookahead/2
		case 2:
			return Duration(rng.Intn(4)) * lookahead
		default:
			return Duration(rng.Int63n(4*int64(lookahead)) + 1)
		}
	}
	s := simParSchedule{boards: make([][]simParStep, domains)}
	for d := range s.boards {
		n := 4 + rng.Intn(12)
		for i := 0; i < n; i++ {
			s.boards[d] = append(s.boards[d], simParStep{
				sleep: dur(),
				emit:  rng.Intn(3) == 0,
				sync:  rng.Intn(5) == 0,
				drop:  rng.Intn(7) == 0,
			})
		}
	}
	for i, n := 0, 2+rng.Intn(6); i < n; i++ {
		s.host = append(s.host, dur())
	}
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		s.timers = append(s.timers, dur()+1)
	}
	return s
}

// simParResult carries everything a differential comparison cares about:
// the full event trace, the end time, per-board private-clock checksums
// (each board folds every post-sleep Proc.Now() into its own slot, so the
// member clock is checked even on steps that never touch the shared
// engine), and the engine statistics.
type simParResult struct {
	events []Event
	end    Time
	clocks []uint64
	stats  SimParStats
}

// runSimParSchedule executes the schedule on a fresh environment, with the
// conservative parallel engine armed or not.
func runSimParSchedule(s simParSchedule, lookahead Duration, par bool) simParResult {
	env := NewEnv(WithTraceCapacity(1 << 14))
	if par {
		env.EnableSimPar(len(s.boards), lookahead)
	}
	clocks := make([]uint64, len(s.boards))
	for d := range s.boards {
		d := d
		steps := s.boards[d]
		env.Spawn(fmt.Sprintf("board%d", d), func(p *Proc) {
			p.BeginCompute(d + 1)
			for i, st := range steps {
				p.Sleep(st.sleep)
				// FNV-style fold of the clock observations; the slot is
				// owned by this goroutine alone.
				clocks[d] = (clocks[d] ^ uint64(p.Now())) * 1099511628211
				if st.emit {
					p.Emit(Event{Comp: fmt.Sprintf("board%d", d), Kind: KindSched, Aux: uint64(i)})
				}
				if st.sync {
					p.PhaseSync()
					p.Emit(Event{Comp: fmt.Sprintf("board%d", d), Kind: KindIRQ, Aux: uint64(i)})
				}
				if st.drop {
					p.EndCompute()
					p.Emit(Event{Comp: fmt.Sprintf("board%d", d), Kind: KindDMA, Aux: uint64(i)})
					p.BeginCompute(d + 1)
				}
			}
			p.EndCompute()
		})
	}
	env.Spawn("host", func(p *Proc) {
		for i, d := range s.host {
			p.Sleep(d)
			p.Emit(Event{Comp: "host", Kind: KindMigrate, Aux: uint64(i)})
		}
	})
	for i, d := range s.timers {
		i := i
		env.AfterFunc(d, func() {
			env.Emit(Event{Comp: "timer", Kind: KindFault, Aux: uint64(i)})
		})
	}
	end := env.Run()
	return simParResult{events: env.Trace().Events(), end: end, clocks: clocks, stats: env.SimParStats()}
}

// diffSimParResults compares two runs of the same schedule, reporting the
// first divergence as an error string (empty when identical).
func diffSimParResults(seq, par simParResult) string {
	if seq.end != par.end {
		return fmt.Sprintf("end time %v (par) != %v (seq)", par.end, seq.end)
	}
	for d := range seq.clocks {
		if seq.clocks[d] != par.clocks[d] {
			return fmt.Sprintf("board %d clock checksum %#x (par) != %#x (seq)", d, par.clocks[d], seq.clocks[d])
		}
	}
	if i, ok := eventsEqual(seq.events, par.events); !ok {
		return fmt.Sprintf("trace diverges at event %d:\n  seq: %+v\n  par: %+v", i, seq.events[i], par.events[i])
	}
	return ""
}

func eventsEqual(a, b []Event) (int, bool) {
	if len(a) != len(b) {
		return min(len(a), len(b)), false
	}
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return 0, true
}

// TestSimParDifferentialSynthetic is the engine-level half of the
// determinism contract: across many random cross-domain schedules, the
// parallel engine must produce the byte-identical event trace, in the
// identical order, ending at the identical virtual time, as the sequential
// engine. Any conservative-safety violation (a member advancing past an
// event that should have preempted it, a join re-enqueueing out of order)
// shows up as a trace divergence.
func TestSimParDifferentialSynthetic(t *testing.T) {
	const lookahead = 825 * Nanosecond
	var phases, waits uint64
	for seed := int64(0); seed < 60; seed++ {
		for _, domains := range []int{1, 2, 3, 4} {
			s := drawSimParSchedule(seed, domains, lookahead)
			seq := runSimParSchedule(s, lookahead, false)
			par := runSimParSchedule(s, lookahead, true)
			phases += par.stats.Phases
			waits += par.stats.HorizonWaits
			if d := diffSimParResults(seq, par); d != "" {
				t.Fatalf("seed %d domains %d: %s", seed, domains, d)
			}
		}
	}
	if phases == 0 {
		t.Fatal("no phase ever formed; the parallel engine was never exercised")
	}
	if waits == 0 {
		t.Fatal("no member ever parked on its horizon; the lookahead bound was never exercised")
	}
}

// TestSimParInterleavingIndependence re-runs one parallel schedule many
// times under both serial and maximally parallel GOMAXPROCS. Member
// goroutines genuinely race on the wall clock, so any ordering that leaks
// from goroutine scheduling into the artifacts (join re-enqueue order,
// trace shard merge order) diverges across repetitions.
func TestSimParInterleavingIndependence(t *testing.T) {
	const lookahead = 825 * Nanosecond
	s := drawSimParSchedule(7, 4, lookahead)
	ref := runSimParSchedule(s, lookahead, true)
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		for i := 0; i < 20; i++ {
			got := runSimParSchedule(s, lookahead, true)
			if d := diffSimParResults(ref, got); d != "" {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("GOMAXPROCS=%d run %d: %s", procs, i, d)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestSimParHorizonProperty checks the conservative lookahead bound against
// an independent brute-force reference over random queue shapes: a member's
// horizon must sit strictly below every pending untagged or same-domain
// event, strictly below other-domain tagged events plus the lookahead, and
// strictly below co-members' start plus the lookahead — and never above the
// environment horizon.
func TestSimParHorizonProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		e := NewEnv()
		L := Duration(1 + rng.Int63n(2000))
		e.EnableSimPar(4, L)
		base := Time(rng.Int63n(10_000))

		mkproc := func(domain int, depth int) *Proc {
			return &Proc{env: e, state: stateRunnable, domain: domain, computeDepth: depth,
				phaseBarred: rng.Intn(5) == 0}
		}
		// Random pending queue: untagged procs, timers, tagged procs of
		// random domains.
		nq := rng.Intn(8)
		for i := 0; i < nq; i++ {
			at := base.Add(Duration(rng.Int63n(3 * int64(L))))
			switch rng.Intn(3) {
			case 0:
				e.queue.Push(event{at: at, seq: uint64(i), timer: &Timer{}})
			case 1:
				e.queue.Push(event{at: at, seq: uint64(i), proc: mkproc(0, 0)})
			default:
				e.queue.Push(event{at: at, seq: uint64(i), proc: mkproc(1 + rng.Intn(4), 1)})
			}
		}
		// Random member set with pairwise distinct domains, all starting
		// within L of base (the prefix rule guarantees this in real phases).
		k := 1 + rng.Intn(4)
		perm := rng.Perm(4)
		var members []event
		for i := 0; i < k; i++ {
			at := base.Add(Duration(rng.Int63n(int64(L))))
			m := mkproc(perm[i]+1, 1)
			m.phaseBarred = false // members are never barred (phaseEligible filters them)
			members = append(members, event{at: at, proc: m})
		}
		if rng.Intn(4) == 0 {
			e.horizon = base.Add(Duration(rng.Int63n(2 * int64(L))))
		}
		// Snapshot the queue for the brute-force reference bound.
		var pending []event
		e.queue.forEach(func(q *event) { pending = append(pending, *q) })

		for i := range members {
			h := e.memberHorizon(members, i)
			if h > e.horizon {
				t.Fatalf("iter %d: member %d horizon %d above env horizon %d", iter, i, h, e.horizon)
			}
			// Brute-force reference bound.
			want := maxTime
			for _, q := range pending {
				b := q.at
				if q.timer == nil && q.proc.computeDepth > 0 && q.proc.domain > 0 &&
					q.proc.domain != members[i].proc.domain && !q.proc.phaseBarred {
					b = q.at.Add(L)
				}
				if b < want {
					want = b
				}
			}
			for j, o := range members {
				if j == i {
					continue
				}
				if b := o.at.Add(L); b < want {
					want = b
				}
			}
			want = want - 1
			if e.horizon < want {
				want = e.horizon
			}
			if h != want {
				t.Fatalf("iter %d member %d: horizon %d, reference %d", iter, i, h, want)
			}
			// The strictness invariant the Sleep tie semantics rely on: no
			// untagged, barred, or same-domain pending event may be
			// reachable.
			for _, q := range pending {
				tagged := q.timer == nil && q.proc.computeDepth > 0 && q.proc.domain > 0 && !q.proc.phaseBarred
				if (!tagged || q.proc.domain == members[i].proc.domain) && h >= q.at {
					t.Fatalf("iter %d member %d: horizon %d reaches untagged/same-domain event at %d",
						iter, i, h, q.at)
				}
			}
		}
	}
}

// TestSimParLookaheadFloor pins the regression boundary for the horizon
// math: with the minimum meaningful lookahead (1 ps) every member's horizon
// collapses to its own start time whenever any other work is pending, so
// the engine degenerates to sequential execution — and the differential
// oracle must still hold there.
func TestSimParLookaheadFloor(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := drawSimParSchedule(seed, 3, 825*Nanosecond)
		seq := runSimParSchedule(s, 825*Nanosecond, false)
		par := runSimParSchedule(s, 1, true)
		if d := diffSimParResults(seq, par); d != "" {
			t.Fatalf("seed %d at 1 ps lookahead: %s", seed, d)
		}
	}
}

// TestEnableSimParRefusals checks the arming guards: non-positive domains or
// lookahead leave the engine sequential, and the FLICKSIM_NOPREDECODE
// escape hatch (which must disable every fast path) wins over EnableSimPar.
func TestEnableSimParRefusals(t *testing.T) {
	for _, tc := range []struct {
		domains   int
		lookahead Duration
	}{{0, Nanosecond}, {-1, Nanosecond}, {2, 0}, {2, -Nanosecond}} {
		e := NewEnv()
		e.EnableSimPar(tc.domains, tc.lookahead)
		if st := e.SimParStats(); st.Enabled {
			t.Errorf("EnableSimPar(%d, %v): engine armed, want refusal", tc.domains, tc.lookahead)
		}
	}
	t.Setenv("FLICKSIM_NOPREDECODE", "1")
	e := NewEnv()
	e.EnableSimPar(2, 825*Nanosecond)
	if st := e.SimParStats(); st.Enabled {
		t.Error("EnableSimPar armed despite FLICKSIM_NOPREDECODE")
	}
}

// TestSimParDisabledEnv checks the dedicated escape hatch reader.
func TestSimParDisabledEnv(t *testing.T) {
	t.Setenv("FLICKSIM_NOSIMPAR", "")
	if SimParDisabled() {
		t.Error("SimParDisabled true with the variable unset")
	}
	t.Setenv("FLICKSIM_NOSIMPAR", "1")
	if !SimParDisabled() {
		t.Error("SimParDisabled false with the variable set")
	}
}

// TestSimParStatsAccounting checks that phases, members, and horizon waits
// are counted, and that a sequential run reports all zeros (the stats must
// never leak into the byte-identical artifacts, so they live outside the
// metrics registry — this test documents that they still exist and move).
func TestSimParStatsAccounting(t *testing.T) {
	const lookahead = 825 * Nanosecond
	s := drawSimParSchedule(3, 4, lookahead)
	seqSt := runSimParSchedule(s, lookahead, false).stats
	if seqSt.Enabled || seqSt.Phases != 0 || seqSt.Members != 0 || seqSt.HorizonWaits != 0 {
		t.Errorf("sequential run reports nonzero sim-par stats: %+v", seqSt)
	}
	parSt := runSimParSchedule(s, lookahead, true).stats
	if !parSt.Enabled || parSt.Domains != 4 || parSt.Lookahead != lookahead {
		t.Errorf("parallel run config stats wrong: %+v", parSt)
	}
	if parSt.Phases == 0 || parSt.Members < parSt.Phases {
		t.Errorf("parallel run counted %d phases / %d members", parSt.Phases, parSt.Members)
	}
}

// FuzzCrossDomainOrdering feeds arbitrary byte strings through a schedule
// decoder and differentially checks the parallel engine against the
// sequential one, hunting (time, domain, seq) tie-break bugs the seeded
// property test might miss. Each byte triple becomes one step of one
// domain's process; ties are common by construction because sleep durations
// are drawn from a tiny alphabet.
func FuzzCrossDomainOrdering(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x10, 0x20, 0x30})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x01, 0xfe, 0x55, 0xaa})
	f.Add([]byte("flick-sim-par"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		const domains = 3
		const lookahead = 16 * Nanosecond
		s := simParSchedule{boards: make([][]simParStep, domains)}
		for i := 0; i+2 < len(data) && i < 90; i += 3 {
			d := int(data[i]) % (domains + 1)
			// A tiny duration alphabet scaled to the lookahead makes exact
			// ties between domains frequent.
			dur := Duration(data[i+1]%9) * (lookahead / 4)
			if d == domains {
				s.host = append(s.host, dur)
				continue
			}
			s.boards[d] = append(s.boards[d], simParStep{
				sleep: dur,
				emit:  data[i+2]&4 != 0,
				sync:  data[i+2]&1 != 0,
				drop:  data[i+2]&2 != 0,
			})
		}
		seq := runSimParSchedule(s, lookahead, false)
		par := runSimParSchedule(s, lookahead, true)
		if d := diffSimParResults(seq, par); d != "" {
			t.Fatal(d)
		}
	})
}
