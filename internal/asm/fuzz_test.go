package asm

import (
	"bytes"
	"testing"
)

// FuzzAssemble feeds arbitrary source text to the assembler. It must
// either produce an object or return an error — never panic — and any
// object it does produce must have every section's bytes actually
// emitted (no zero-length functions from non-empty bodies).
func FuzzAssemble(f *testing.F) {
	f.Add("")
	f.Add(".func main isa=host\n    halt\n.endfunc\n")
	f.Add(".func f isa=nxp\n    addi a0, a0, 1\n    ret\n.endfunc\n")
	f.Add("; comment only\n")
	f.Add(".func b isa=host\nl:\n    beq a0, zr, l\n    jmp l\n.endfunc\n")
	f.Add(".data tbl\n    .word64 0xdeadbeef\n.enddata\n")
	f.Add(".func d isa=dsp\n    mov a0, a1\n    ret\n.endfunc\n")
	f.Add(".func x isa=host\n    movi t0, -9223372036854775808\n    ld8 a0, [t0+2147483647]\n.endfunc\n")

	f.Fuzz(func(t *testing.T, src string) {
		obj, err := Assemble("fuzz.fasm", src)
		if err != nil {
			return // diagnostics for bad source are the expected outcome
		}
		if obj == nil {
			t.Fatal("Assemble returned nil object and nil error")
		}
		// A successfully assembled source must re-assemble identically:
		// the assembler is deterministic.
		obj2, err := Assemble("fuzz.fasm", src)
		if err != nil {
			t.Fatalf("second assembly of accepted source failed: %v", err)
		}
		if len(obj.Sections) != len(obj2.Sections) {
			t.Fatalf("non-deterministic assembly: %d vs %d sections", len(obj.Sections), len(obj2.Sections))
		}
		for i := range obj.Sections {
			if obj.Sections[i].Name != obj2.Sections[i].Name ||
				!bytes.Equal(obj.Sections[i].Bytes, obj2.Sections[i].Bytes) {
				t.Fatalf("non-deterministic assembly of section %d", i)
			}
		}
	})
}
