package asm

import (
	"strconv"
	"strings"

	"flick/internal/isa"
)

// instruction parses and emits one instruction line.
func (a *assembler) instruction(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.TrimSpace(mnemonic)
	operands := splitOperands(rest)

	switch mnemonic {
	case "li":
		if len(operands) != 2 {
			return a.errf("li wants rd, imm")
		}
		rd, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(operands[1])
		if err != nil {
			return err
		}
		return a.emitLoadImm(rd, imm)
	case "la":
		if len(operands) != 2 {
			return a.errf("la wants rd, symbol")
		}
		rd, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		if !validIdent(operands[1]) {
			return a.errf("la: invalid symbol %q", operands[1])
		}
		return a.emitLoadAddress(rd, operands[1])
	}

	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return a.errf("unknown mnemonic %q", mnemonic)
	}
	switch isa.ClassOf(op) {
	case isa.ClassNone:
		if len(operands) != 0 {
			return a.errf("%s takes no operands", op)
		}
		return a.emit(isa.Instr{Op: op})

	case isa.ClassRR:
		if len(operands) != 2 {
			return a.errf("%s wants rd, rs", op)
		}
		rd, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(operands[1])
		if err != nil {
			return err
		}
		return a.emit(isa.Instr{Op: op, Rd: rd, Rs: rs})

	case isa.ClassRRR:
		if len(operands) != 3 {
			return a.errf("%s wants rd, rs, rt", op)
		}
		rd, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(operands[1])
		if err != nil {
			return err
		}
		rt, err := a.reg(operands[2])
		if err != nil {
			return err
		}
		return a.emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})

	case isa.ClassRRI:
		if len(operands) != 3 {
			return a.errf("%s wants rd, rs, imm", op)
		}
		rd, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(operands[1])
		if err != nil {
			return err
		}
		imm, err := a.imm(operands[2])
		if err != nil {
			return err
		}
		return a.emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})

	case isa.ClassRI:
		if len(operands) != 2 {
			return a.errf("%s wants rd, imm", op)
		}
		rd, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(operands[1])
		if err != nil {
			return err
		}
		return a.emit(isa.Instr{Op: op, Rd: rd, Imm: imm})

	case isa.ClassMem:
		if len(operands) != 2 {
			return a.errf("%s wants reg, [base+off]", op)
		}
		valueReg, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		base, off, err := a.memOperand(operands[1])
		if err != nil {
			return err
		}
		if op >= isa.OpSt1 && op <= isa.OpSt8 {
			// Stores: value in Rs, base in Rd.
			return a.emit(isa.Instr{Op: op, Rd: base, Rs: valueReg, Imm: off})
		}
		return a.emit(isa.Instr{Op: op, Rd: valueReg, Rs: base, Imm: off})

	case isa.ClassR:
		if len(operands) != 1 {
			return a.errf("%s wants one register", op)
		}
		r, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		if op == isa.OpPop {
			return a.emit(isa.Instr{Op: op, Rd: r})
		}
		return a.emit(isa.Instr{Op: op, Rs: r})

	case isa.ClassI:
		if len(operands) != 1 {
			return a.errf("%s wants one operand", op)
		}
		// jmp/call accept labels or symbols; native/sys take numbers.
		if op == isa.OpJmp || op == isa.OpCall {
			if validIdent(operands[0]) {
				return a.emitSymbolic(isa.Instr{Op: op}, operands[0])
			}
		}
		imm, err := a.imm(operands[0])
		if err != nil {
			return err
		}
		return a.emit(isa.Instr{Op: op, Imm: imm})

	case isa.ClassBranch:
		if len(operands) != 3 {
			return a.errf("%s wants rs, rt, target", op)
		}
		rs, err := a.reg(operands[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(operands[1])
		if err != nil {
			return err
		}
		if validIdent(operands[2]) {
			return a.emitSymbolic(isa.Instr{Op: op, Rs: rs, Rt: rt}, operands[2])
		}
		imm, err := a.imm(operands[2])
		if err != nil {
			return err
		}
		return a.emit(isa.Instr{Op: op, Rs: rs, Rt: rt, Imm: imm})
	}
	return a.errf("unhandled operand class for %s", op)
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func (a *assembler) reg(s string) (isa.Reg, error) {
	r, ok := isa.RegByName(s)
	if !ok {
		return 0, a.errf("invalid register %q", s)
	}
	return r, nil
}

func (a *assembler) imm(s string) (int64, error) {
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xFFFFFFFF00000000.
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, a.errf("invalid immediate %q", s)
	}
	return v, nil
}

// memOperand parses "[reg]", "[reg+imm]", "[reg-imm]".
func (a *assembler) memOperand(s string) (isa.Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, a.errf("invalid memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := a.reg(inner)
		return r, 0, err
	}
	r, err := a.reg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := a.imm(strings.TrimSpace(inner[sep:]))
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Bare register names and numbers are not identifiers.
	if _, isReg := isa.RegByName(s); isReg {
		return false
	}
	return true
}

func patchLE(b []byte, v int64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}

func alignUp(v, align uint64) uint64 {
	if align == 0 {
		return v
	}
	return (v + align - 1) &^ (align - 1)
}
