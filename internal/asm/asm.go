// Package asm implements the two-pass assembler of the Flick toolchain.
//
// Source files hold functions and data blocks annotated with their target
// ISA — the simulation counterpart of the paper's source annotations that
// partition a program at function granularity:
//
//	; traversal runs near the data
//	.func traverse isa=nxp
//	loop:
//	    ld8  a0, [a0+0]
//	    addi a1, a1, -1
//	    bne  a1, zr, loop
//	    ret
//	.endfunc
//
//	.func main isa=host
//	    la   a0, listhead
//	    movi a1, 64
//	    call traverse        ; cross-ISA call: linker resolves, NX faults migrate
//	    halt
//	.endfunc
//
//	.data listhead isa=nxp align=8
//	    .word64 0
//	.enddata
//
// Supported pseudo-instructions: `li rd, imm` (synthesizes movi/orhi as
// needed), `la rd, symbol` (loads a symbol's address with the ISA's
// absolute relocation method), and `jmp`/`call`/branches targeting labels
// or global symbols. Comments start with ';' or '#'.
package asm

import (
	"fmt"
	"math"
	"strings"

	"flick/internal/isa"
	"flick/internal/multibin"
)

// Error is an assembly diagnostic with position information.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Assemble assembles one source file into a relocatable object.
func Assemble(filename, src string) (*multibin.Object, error) {
	a := &assembler{file: filename, obj: &multibin.Object{}}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.obj, nil
}

type assembler struct {
	file string
	line int
	obj  *multibin.Object

	// Current block state.
	inFunc  bool
	inData  bool
	curISA  isa.ISA
	codec   isa.Backend
	sec     *multibin.Section
	symName string
	symOff  uint64 // offset of the current symbol within sec

	labels map[string]uint64 // local label → offset within sec
	fixups []fixup           // local-label patches for pass 2
}

// fixup is a branch/jump site awaiting a local label offset.
type fixup struct {
	line     int
	label    string
	instrOff uint64 // within section
	immOff   int
	immWidth int
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{File: a.file, Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := a.statement(line); err != nil {
			return err
		}
	}
	if a.inFunc || a.inData {
		a.line++
		return a.errf("unterminated %s block %q", blockKind(a), a.symName)
	}
	return nil
}

func blockKind(a *assembler) string {
	if a.inFunc {
		return ".func"
	}
	return ".data"
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inStr = !inStr
		case !inStr && (s[i] == ';' || s[i] == '#'):
			return strings.TrimSpace(s[:i])
		}
	}
	return strings.TrimSpace(s)
}

func (a *assembler) statement(line string) error {
	switch {
	case strings.HasPrefix(line, ".func"):
		return a.beginFunc(line)
	case line == ".endfunc":
		return a.endFunc()
	case strings.HasPrefix(line, ".data"):
		return a.beginData(line)
	case line == ".enddata":
		return a.endData()
	case strings.HasSuffix(line, ":") && a.inFunc:
		return a.defineLabel(strings.TrimSuffix(line, ":"))
	case a.inFunc:
		// A label may share a line with an instruction: "loop: addi ...".
		if idx := strings.IndexByte(line, ':'); idx > 0 && validIdent(line[:idx]) {
			if err := a.defineLabel(line[:idx]); err != nil {
				return err
			}
			rest := strings.TrimSpace(line[idx+1:])
			if rest == "" {
				return nil
			}
			return a.instruction(rest)
		}
		return a.instruction(line)
	case a.inData:
		return a.dataDirective(line)
	default:
		return a.errf("statement outside .func/.data block: %q", line)
	}
}

// parseAttrs splits ".func name key=value ..." into name and attributes.
func parseAttrs(line string) (name string, attrs map[string]string, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", nil, fmt.Errorf("missing name in %q", line)
	}
	attrs = make(map[string]string)
	name = fields[1]
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return "", nil, fmt.Errorf("malformed attribute %q", f)
		}
		attrs[k] = v
	}
	return name, attrs, nil
}

func isaFromAttr(v string) (isa.ISA, error) {
	if v == "" {
		return isa.HostISA(), nil
	}
	if b, ok := isa.ByName(v); ok {
		return b.ISA(), nil
	}
	return 0, fmt.Errorf("unknown isa %q (want %s)", v, strings.Join(isa.Names(), ", "))
}

func (a *assembler) beginFunc(line string) error {
	if a.inFunc || a.inData {
		return a.errf(".func inside another block")
	}
	name, attrs, err := parseAttrs(line)
	if err != nil {
		return a.errf("%v", err)
	}
	target, err := isaFromAttr(attrs["isa"])
	if err != nil {
		return a.errf("%v", err)
	}
	a.inFunc = true
	a.curISA = target
	a.codec = isa.MustLookup(target)
	a.sec = a.obj.Section(multibin.SecText, target)
	// Align the function start to the backend's function alignment.
	align := uint64(a.codec.FuncAlign())
	pad := alignUp(uint64(len(a.sec.Bytes)), align) - uint64(len(a.sec.Bytes))
	a.sec.Bytes = append(a.sec.Bytes, make([]byte, pad)...)
	a.symName = name
	a.symOff = uint64(len(a.sec.Bytes))
	a.labels = make(map[string]uint64)
	a.fixups = nil
	return nil
}

func (a *assembler) endFunc() error {
	if !a.inFunc {
		return a.errf(".endfunc without .func")
	}
	// Pass 2: patch local-label branches.
	for _, fx := range a.fixups {
		off, ok := a.labels[fx.label]
		if !ok {
			// Not a local label: treat as a global symbol reference.
			a.sec.Relocs = append(a.sec.Relocs, multibin.Reloc{
				Off:      fx.instrOff + uint64(fx.immOff),
				Width:    fx.immWidth,
				InstrOff: fx.instrOff,
				Kind:     multibin.RelocPCRel32,
				Symbol:   fx.label,
			})
			continue
		}
		disp := int64(off) - int64(fx.instrOff)
		patchLE(a.sec.Bytes[fx.instrOff+uint64(fx.immOff):fx.instrOff+uint64(fx.immOff)+uint64(fx.immWidth)], disp)
	}
	a.sec.Symbols = append(a.sec.Symbols, multibin.Symbol{
		Name:   a.symName,
		Off:    a.symOff,
		Size:   uint64(len(a.sec.Bytes)) - a.symOff,
		Global: true,
	})
	a.inFunc = false
	a.sec = nil
	return nil
}

func (a *assembler) defineLabel(name string) error {
	if !validIdent(name) {
		return a.errf("invalid label %q", name)
	}
	if _, dup := a.labels[name]; dup {
		return a.errf("duplicate label %q", name)
	}
	a.labels[name] = uint64(len(a.sec.Bytes))
	return nil
}

func (a *assembler) emit(ins isa.Instr) error {
	b, err := a.codec.Encode(ins)
	if err != nil {
		return a.errf("encode %v: %v", ins, err)
	}
	a.sec.Bytes = append(a.sec.Bytes, b...)
	return nil
}

// emitSymbolic emits ins with a placeholder immediate and records either a
// local fixup or (after endFunc decides) a relocation toward symbol.
func (a *assembler) emitSymbolic(ins isa.Instr, symbol string) error {
	ins.Imm = isa.PlaceholderPCRel32
	instrOff := uint64(len(a.sec.Bytes))
	immOff, immWidth, err := a.codec.ImmOffset(ins)
	if err != nil {
		return a.errf("%v", err)
	}
	if err := a.emit(ins); err != nil {
		return err
	}
	a.fixups = append(a.fixups, fixup{line: a.line, label: symbol, instrOff: instrOff, immOff: immOff, immWidth: immWidth})
	return nil
}

// emitLoadAddress expands `la rd, symbol` using the ISA's absolute
// relocation method.
func (a *assembler) emitLoadAddress(rd isa.Reg, symbol string) error {
	if a.codec.WideImm() {
		ins := isa.Instr{Op: isa.OpMovi, Rd: rd, Imm: isa.PlaceholderAbs64}
		instrOff := uint64(len(a.sec.Bytes))
		immOff, immWidth, err := a.codec.ImmOffset(ins)
		if err != nil {
			return a.errf("%v", err)
		}
		if err := a.emit(ins); err != nil {
			return err
		}
		a.sec.Relocs = append(a.sec.Relocs, multibin.Reloc{
			Off: instrOff + uint64(immOff), Width: immWidth, InstrOff: instrOff,
			Kind: multibin.RelocAbs64, Symbol: symbol,
		})
		return nil
	}
	// Narrow-immediate ISAs: movi (low 32, sign-extended) then orhi
	// (high 32).
	for i, kind := range []multibin.RelocKind{multibin.RelocAbsLo32, multibin.RelocAbsHi32} {
		op := isa.OpMovi
		if i == 1 {
			op = isa.OpOrhi
		}
		ins := isa.Instr{Op: op, Rd: rd, Imm: isa.PlaceholderPCRel32}
		instrOff := uint64(len(a.sec.Bytes))
		immOff, immWidth, err := a.codec.ImmOffset(ins)
		if err != nil {
			return a.errf("%v", err)
		}
		if err := a.emit(ins); err != nil {
			return err
		}
		a.sec.Relocs = append(a.sec.Relocs, multibin.Reloc{
			Off: instrOff + uint64(immOff), Width: immWidth, InstrOff: instrOff,
			Kind: kind, Symbol: symbol,
		})
	}
	return nil
}

// emitLoadImm expands `li rd, imm` for any 64-bit immediate.
func (a *assembler) emitLoadImm(rd isa.Reg, imm int64) error {
	if imm >= math.MinInt32 && imm <= math.MaxInt32 {
		return a.emit(isa.Instr{Op: isa.OpMovi, Rd: rd, Imm: imm})
	}
	if a.codec.WideImm() {
		return a.emit(isa.Instr{Op: isa.OpMovi, Rd: rd, Imm: imm})
	}
	if err := a.emit(isa.Instr{Op: isa.OpMovi, Rd: rd, Imm: int64(int32(uint32(uint64(imm))))}); err != nil {
		return err
	}
	// The high half is reinterpreted as a signed 32-bit immediate; orhi
	// only consumes its low 32 bits, so the value is preserved.
	return a.emit(isa.Instr{Op: isa.OpOrhi, Rd: rd, Imm: int64(int32(uint32(uint64(imm) >> 32)))})
}
