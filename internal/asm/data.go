package asm

import (
	"encoding/binary"
	"strconv"
	"strings"

	"flick/internal/multibin"
)

func (a *assembler) beginData(line string) error {
	if a.inFunc || a.inData {
		return a.errf(".data inside another block")
	}
	name, attrs, err := parseAttrs(line)
	if err != nil {
		return a.errf("%v", err)
	}
	target, err := isaFromAttr(attrs["isa"])
	if err != nil {
		return a.errf("%v", err)
	}
	align := uint64(8)
	if v, ok := attrs["align"]; ok {
		n, err := strconv.ParseUint(v, 0, 64)
		if err != nil || n == 0 || n&(n-1) != 0 {
			return a.errf("invalid align %q (want a power of two)", v)
		}
		align = n
	}
	a.inData = true
	a.curISA = target
	a.sec = a.obj.Section(multibin.SecData, target)
	pad := alignUp(uint64(len(a.sec.Bytes)), align) - uint64(len(a.sec.Bytes))
	a.sec.Bytes = append(a.sec.Bytes, make([]byte, pad)...)
	a.symName = name
	a.symOff = uint64(len(a.sec.Bytes))
	return nil
}

func (a *assembler) endData() error {
	if !a.inData {
		return a.errf(".enddata without .data")
	}
	a.sec.Symbols = append(a.sec.Symbols, multibin.Symbol{
		Name:   a.symName,
		Off:    a.symOff,
		Size:   uint64(len(a.sec.Bytes)) - a.symOff,
		Global: true,
	})
	a.inData = false
	a.sec = nil
	return nil
}

func (a *assembler) dataDirective(line string) error {
	directive, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch directive {
	case ".word64", ".word32", ".word16", ".byte":
		width := map[string]int{".word64": 8, ".word32": 4, ".word16": 2, ".byte": 1}[directive]
		for _, f := range splitOperands(rest) {
			v, err := a.imm(f)
			if err != nil {
				return err
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			a.sec.Bytes = append(a.sec.Bytes, buf[:width]...)
		}
		return nil
	case ".zero":
		n, err := strconv.ParseUint(rest, 0, 32)
		if err != nil {
			return a.errf("invalid .zero count %q", rest)
		}
		a.sec.Bytes = append(a.sec.Bytes, make([]byte, n)...)
		return nil
	case ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("invalid .ascii string %s", rest)
		}
		a.sec.Bytes = append(a.sec.Bytes, s...)
		return nil
	case ".addr":
		if !validIdent(rest) {
			return a.errf("invalid .addr symbol %q", rest)
		}
		off := uint64(len(a.sec.Bytes))
		a.sec.Bytes = append(a.sec.Bytes, make([]byte, 8)...)
		a.sec.Relocs = append(a.sec.Relocs, multibin.Reloc{
			Off: off, Width: 8, InstrOff: off,
			Kind: multibin.RelocAbs64, Symbol: rest,
		})
		return nil
	default:
		return a.errf("unknown data directive %q", directive)
	}
}
