package asm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"flick/internal/isa"
	"flick/internal/multibin"
)

func mustAssemble(t *testing.T, src string) *multibin.Object {
	t.Helper()
	obj, err := Assemble("test.fasm", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return obj
}

// decodeAll decodes a symbol's bytes with the section's codec.
func decodeAll(t *testing.T, sec *multibin.Section, sym multibin.Symbol) []isa.Instr {
	t.Helper()
	codec := isa.CodecFor(sec.ISA)
	var out []isa.Instr
	b := sec.Bytes[sym.Off : sym.Off+sym.Size]
	for len(b) > 0 {
		ins, n, err := codec.Decode(b)
		if err != nil {
			t.Fatalf("decode at +%d: %v", len(sec.Bytes)-len(b), err)
		}
		out = append(out, ins)
		b = b[n:]
	}
	return out
}

func TestAssembleSimpleHostFunc(t *testing.T) {
	obj := mustAssemble(t, `
; a tiny host function
.func main isa=host
    movi a0, 42
    addi a0, a0, -2
    ret
.endfunc
`)
	sec, sym, ok := obj.FindSymbol("main")
	if !ok {
		t.Fatal("main not defined")
	}
	if sec.Name != ".text" || sec.ISA != isa.ISAHost {
		t.Errorf("section = %s/%v", sec.Name, sec.ISA)
	}
	ins := decodeAll(t, sec, sym)
	if len(ins) != 3 {
		t.Fatalf("decoded %d instructions", len(ins))
	}
	if ins[0].Op != isa.OpMovi || ins[0].Imm != 42 {
		t.Errorf("ins[0] = %v", ins[0])
	}
	if ins[1].Op != isa.OpAddi || ins[1].Imm != -2 {
		t.Errorf("ins[1] = %v", ins[1])
	}
	if ins[2].Op != isa.OpRet {
		t.Errorf("ins[2] = %v", ins[2])
	}
}

func TestNxpSectionNamingAndAlignment(t *testing.T) {
	obj := mustAssemble(t, `
.func traverse isa=nxp
    ld8 a0, [a0+0]
    ret
.endfunc
`)
	sec, sym, ok := obj.FindSymbol("traverse")
	if !ok {
		t.Fatal("traverse not defined")
	}
	if sec.Name != ".text.nxp" {
		t.Errorf("section name = %q, want .text.nxp", sec.Name)
	}
	if sym.Off%8 != 0 {
		t.Errorf("NxP function at misaligned offset %d", sym.Off)
	}
	if sym.Size != 2*isa.NxpInstrLen {
		t.Errorf("size = %d", sym.Size)
	}
}

func TestLocalLabelsForwardAndBackward(t *testing.T) {
	obj := mustAssemble(t, `
.func loopy isa=nxp
top:
    addi a0, a0, -1
    bne a0, zr, top
    beq a1, zr, out
    movi a1, 0
out:
    ret
.endfunc
`)
	sec, sym, _ := obj.FindSymbol("loopy")
	ins := decodeAll(t, sec, sym)
	// bne is the 2nd instruction (offset 8); target "top" at offset 0 → -8.
	if ins[1].Op != isa.OpBne || ins[1].Imm != -8 {
		t.Errorf("backward branch = %v", ins[1])
	}
	// beq at offset 16; "out" at offset 32 → +16.
	if ins[2].Op != isa.OpBeq || ins[2].Imm != 16 {
		t.Errorf("forward branch = %v", ins[2])
	}
	if len(sec.Relocs) != 0 {
		t.Errorf("local branches produced relocs: %v", sec.Relocs)
	}
}

func TestCallEmitsReloc(t *testing.T) {
	obj := mustAssemble(t, `
.func main isa=host
    call helper
    halt
.endfunc
`)
	sec, _, _ := obj.FindSymbol("main")
	if len(sec.Relocs) != 1 {
		t.Fatalf("relocs = %v", sec.Relocs)
	}
	r := sec.Relocs[0]
	if r.Kind != multibin.RelocPCRel32 || r.Symbol != "helper" {
		t.Errorf("reloc = %+v", r)
	}
	if r.Off != r.InstrOff+3 { // host imm field at byte 3
		t.Errorf("reloc field offset %d vs instr %d", r.Off, r.InstrOff)
	}
}

func TestLoadAddressHost(t *testing.T) {
	obj := mustAssemble(t, `
.func main isa=host
    la a1, buffer
    ret
.endfunc
`)
	sec, _, _ := obj.FindSymbol("main")
	if len(sec.Relocs) != 1 || sec.Relocs[0].Kind != multibin.RelocAbs64 || sec.Relocs[0].Width != 8 {
		t.Errorf("host la relocs = %+v", sec.Relocs)
	}
}

func TestLoadAddressNxpPair(t *testing.T) {
	obj := mustAssemble(t, `
.func f isa=nxp
    la a1, buffer
    ret
.endfunc
`)
	sec, sym, _ := obj.FindSymbol("f")
	ins := decodeAll(t, sec, sym)
	if ins[0].Op != isa.OpMovi || ins[1].Op != isa.OpOrhi {
		t.Errorf("nxp la expansion = %v, %v", ins[0], ins[1])
	}
	if len(sec.Relocs) != 2 ||
		sec.Relocs[0].Kind != multibin.RelocAbsLo32 ||
		sec.Relocs[1].Kind != multibin.RelocAbsHi32 {
		t.Errorf("nxp la relocs = %+v", sec.Relocs)
	}
}

func TestLoadImm64Expansion(t *testing.T) {
	obj := mustAssemble(t, `
.func f isa=nxp
    li a0, 0x123456789ABCDEF0
    li a1, 7
    ret
.endfunc
`)
	sec, sym, _ := obj.FindSymbol("f")
	ins := decodeAll(t, sec, sym)
	if len(ins) != 4 {
		t.Fatalf("instructions = %v", ins)
	}
	if ins[0].Op != isa.OpMovi || uint32(ins[0].Imm) != 0x9ABCDEF0 {
		t.Errorf("li low = %v", ins[0])
	}
	if ins[1].Op != isa.OpOrhi || ins[1].Imm != 0x12345678 {
		t.Errorf("li high = %v", ins[1])
	}
	if ins[2].Op != isa.OpMovi || ins[2].Imm != 7 {
		t.Errorf("small li = %v", ins[2])
	}
}

func TestMemOperandForms(t *testing.T) {
	obj := mustAssemble(t, `
.func f isa=host
    ld8 a0, [a1]
    ld4 a0, [a1+16]
    st8 a0, [sp-8]
    ret
.endfunc
`)
	sec, sym, _ := obj.FindSymbol("f")
	ins := decodeAll(t, sec, sym)
	if ins[0].Imm != 0 || ins[1].Imm != 16 || ins[2].Imm != -8 {
		t.Errorf("mem offsets = %v %v %v", ins[0], ins[1], ins[2])
	}
	// Store operand order: value register in Rs, base in Rd.
	if ins[2].Rs != isa.A0 || ins[2].Rd != isa.SP {
		t.Errorf("store operands = %v", ins[2])
	}
}

func TestDataDirectives(t *testing.T) {
	obj := mustAssemble(t, `
.data table isa=nxp align=16
    .word64 1, 2, 0xFF
    .word32 7
    .word16 8
    .byte 9, 10
    .zero 4
    .ascii "hi"
.enddata
`)
	sec, sym, ok := obj.FindSymbol("table")
	if !ok {
		t.Fatal("table undefined")
	}
	if sec.Name != ".data.nxp" {
		t.Errorf("section = %q", sec.Name)
	}
	want := 3*8 + 4 + 2 + 2 + 4 + 2
	if int(sym.Size) != want {
		t.Errorf("size = %d, want %d", sym.Size, want)
	}
	b := sec.Bytes[sym.Off:]
	if b[0] != 1 || b[8] != 2 || b[16] != 0xFF {
		t.Errorf("word64 contents wrong: % x", b[:24])
	}
	if string(b[want-2:want]) != "hi" {
		t.Errorf("ascii contents = %q", b[want-2:want])
	}
}

func TestDataAddrDirective(t *testing.T) {
	obj := mustAssemble(t, `
.data ptrs isa=host
    .addr main
.enddata
`)
	sec, _, _ := obj.FindSymbol("ptrs")
	if len(sec.Relocs) != 1 || sec.Relocs[0].Kind != multibin.RelocAbs64 || sec.Relocs[0].Symbol != "main" {
		t.Errorf("relocs = %+v", sec.Relocs)
	}
}

func TestCharImmediate(t *testing.T) {
	obj := mustAssemble(t, `
.func f isa=host
    movi a0, 'A'
    ret
.endfunc
`)
	sec, sym, _ := obj.FindSymbol("f")
	ins := decodeAll(t, sec, sym)
	if ins[0].Imm != 'A' {
		t.Errorf("char imm = %d", ins[0].Imm)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", ".func f isa=host\n frob a0\n.endfunc", "unknown mnemonic"},
		{"bad register", ".func f isa=host\n mov a0, q9\n.endfunc", "invalid register"},
		{"bad isa", ".func f isa=sparc\n ret\n.endfunc", "unknown isa"},
		{"unterminated", ".func f isa=host\n ret", "unterminated"},
		{"outside block", "movi a0, 1", "outside"},
		{"dup label", ".func f isa=host\nx:\nx:\n ret\n.endfunc", "duplicate label"},
		{"nested func", ".func f isa=host\n.func g isa=host\n ret\n.endfunc\n.endfunc", "inside another block"},
		{"operand count", ".func f isa=host\n add a0, a1\n.endfunc", "wants"},
		{"bad mem operand", ".func f isa=host\n ld8 a0, a1\n.endfunc", "memory operand"},
		{"nxp imm too big", ".func f isa=nxp\n movi a0, 0x100000000\n.endfunc", "32 bits"},
		{"bad data directive", ".data d isa=host\n .quad 1\n.enddata", "unknown data directive"},
		{"bad align", ".data d isa=host align=3\n.enddata", "align"},
		{"endfunc alone", ".endfunc", ".endfunc without"},
		{"enddata alone", ".enddata", ".enddata without"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t.fasm", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("err = %v, want substring %q", err, c.wantSub)
			}
			if !strings.HasPrefix(err.Error(), "t.fasm:") {
				t.Errorf("error lacks position: %v", err)
			}
		})
	}
}

func TestCommentHandling(t *testing.T) {
	obj := mustAssemble(t, `
# full-line hash comment
.func f isa=host   ; trailing comment
    movi a0, 1     # another
    ret
.endfunc
.data s isa=host
    .ascii "semi;colon#inside"
.enddata
`)
	_, sym, _ := obj.FindSymbol("s")
	if sym.Size != uint64(len("semi;colon#inside")) {
		t.Errorf("string with comment chars truncated: size=%d", sym.Size)
	}
}

func TestAssembleNeverPanicsProperty(t *testing.T) {
	// Robustness: arbitrary text must produce either an object or a
	// positioned error, never a panic.
	f := func(lines []string) bool {
		src := strings.Join(lines, "\n")
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		obj, err := Assemble("fuzz.fasm", src)
		if err != nil {
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("non-positioned error: %v", err)
			}
			return ae.Line >= 1
		}
		return obj != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAssembleFragmentsNeverPanic(t *testing.T) {
	// Adversarial fragments around the grammar's edges.
	fragments := []string{
		".func", ".func x", ".func x isa=", ".endfunc",
		".data d isa=host align=0\n.enddata",
		".func f isa=host\n ld8 a0, [\n.endfunc",
		".func f isa=host\n movi a0,\n.endfunc",
		".func f isa=host\n st8 a0, [a1+]\n.endfunc",
		".func f isa=host\n:\n.endfunc",
		".func f isa=host\n li a0, 99999999999999999999999\n.endfunc",
		".data d isa=host\n .ascii \"unterminated\n.enddata",
		".data d isa=host\n .zero -1\n.enddata",
		".func f isa=host\n jmp 'x\n.endfunc",
		"\x00\x01\x02",
	}
	for _, src := range fragments {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Assemble("frag.fasm", src)
		}()
	}
}

func TestLabelSharingLineWithInstruction(t *testing.T) {
	obj := mustAssemble(t, `
.func f isa=host
    movi t0, 2
top: addi t0, t0, -1
    bne t0, zr, top
    ret
.endfunc
`)
	sec, sym, _ := obj.FindSymbol("f")
	ins := decodeAll(t, sec, sym)
	if len(ins) != 4 {
		t.Fatalf("instructions = %v", ins)
	}
	// bne (3rd instruction) targets "top" (start of the 2nd).
	if ins[2].Op != isa.OpBne || ins[2].Imm >= 0 {
		t.Errorf("branch to inline label = %v", ins[2])
	}
}
