package flick_test

import (
	"testing"

	"flick"
	"flick/internal/kernel"
	"flick/internal/platform"
)

// FuzzPlacementRouting drives the board-placement and descriptor-routing
// path through random (board count, policy, task fan-out, fault schedule)
// combinations. Whatever interleaving of arrivals, duplicated descriptors,
// dropped completions, and board failovers the inputs produce, three
// invariants must hold exactly:
//
//   - every task's exit code matches the placement-independent oracle
//     (a completion routed to the wrong task would corrupt it),
//   - the board cores served exactly tasks×calls h2n descriptors (a
//     double-dispatched descriptor would inflate the count), and
//   - the hosts served exactly tasks×calls nested n2h calls.
//
// The fault menu holds only schedules the protocol guarantees to recover
// from: duplicate-descriptor delivery, lost MSIs, and a fully dead extra
// board's DMA (recoverable by failover; a no-op site at boards=1).
func FuzzPlacementRouting(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), int64(1))  // 1 board, round-robin, fault-free
	f.Add(uint8(3), uint8(1), uint8(3), uint8(1), int64(7))  // 4 boards, least-loaded, dup storm
	f.Add(uint8(1), uint8(2), uint8(2), uint8(3), int64(42)) // 2 boards, affinity, dead board-1 DMA
	f.Add(uint8(2), uint8(0), uint8(3), uint8(4), int64(9))  // 3 boards, dropped MSIs
	f.Add(uint8(1), uint8(1), uint8(1), uint8(5), int64(11)) // dup + drop mix
	f.Add(uint8(2), uint8(2), uint8(2), uint8(2), int64(-3)) // dead board-1 MSIs
	f.Fuzz(func(t *testing.T, boardsB, policyB, tasksB, faultB uint8, faultSeed int64) {
		boards := 1 + int(boardsB)%4
		policies := []string{"round-robin", "least-loaded", "affinity"}
		policy := policies[int(policyB)%len(policies)]
		tasks := 1 + int(tasksB)%4
		const calls = 3
		faultMenu := []string{
			"",
			"dma.dup=0.4",
			"msi1.drop=1",
			"dma1.fail=1",
			"msi.drop=0.5",
			"dma.dup=0.3,msi.drop=0.4",
		}
		spec := faultMenu[int(faultB)%len(faultMenu)]

		p := platform.DefaultParams()
		p.HostCores = tasks
		p.Faults = spec
		p.FaultSeed = faultSeed
		sys, err := flick.Build(flick.Config{
			Sources:     map[string]string{"mix.fasm": placementMix},
			Params:      &p,
			Boards:      boards,
			BoardPolicy: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		var started []*kernel.Task
		for i := 0; i < tasks; i++ {
			task, err := sys.Start("main", uint64(calls), uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			started = append(started, task)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatalf("boards=%d %s tasks=%d faults=%q seed=%d: %v", boards, policy, tasks, spec, faultSeed, err)
		}
		for i, task := range started {
			if task.Err != nil {
				t.Fatalf("boards=%d %s faults=%q seed=%d task %d: %v", boards, policy, spec, faultSeed, i, task.Err)
			}
			if want := mixExit(i, calls); task.ExitCode != want {
				t.Errorf("boards=%d %s faults=%q seed=%d: task %d exit %d, want %d (completion misrouted?)",
					boards, policy, spec, faultSeed, i, task.ExitCode, want)
			}
		}
		st := sys.Runtime.Stats()
		if want := tasks * calls; st.H2NCalls != want {
			t.Errorf("boards=%d %s faults=%q seed=%d: %d h2n calls served, want %d (double dispatch?)",
				boards, policy, spec, faultSeed, st.H2NCalls, want)
		}
		if want := tasks * calls; st.N2HCalls != want {
			t.Errorf("boards=%d %s faults=%q seed=%d: %d n2h calls served, want %d",
				boards, policy, spec, faultSeed, st.N2HCalls, want)
		}
	})
}
