package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// capture renders a minimal `go test -json` stream with one benchmark
// result per (name, ns/op) pair, split across Output records the way
// test2json splits real streams (name in one record, numbers in the next).
func capture(t *testing.T, path string, results map[string]float64) string {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for name, ns := range results {
		fmt.Fprintf(f, `{"Action":"output","Package":"p","Output":"%s         \t"}`+"\n", name)
		fmt.Fprintf(f, `{"Action":"output","Package":"p","Output":"1000\t        %.2f ns/op\t       0 B/op\t       0 allocs/op\n"}`+"\n", ns)
	}
	return path
}

func TestWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]float64{
		"BenchmarkCoreStep/host": 70.0,
		"BenchmarkCoreStep/nxp":  70.0,
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]float64{
		"BenchmarkCoreStep/host": 80.0, // +14.3%, inside the 15% limit
		"BenchmarkCoreStep/nxp":  50.0, // improvement
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]float64{
		"BenchmarkCoreStep/host": 70.0,
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]float64{
		"BenchmarkCoreStep/host": 85.0, // +21.4%
	})
	if code := run([]string{base, cur}); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

// A benchmark only present on one side must not fail the gate: a freshly
// added backend appears in the current capture before the checked-in
// baseline is refreshed, and the baseline may name benchmarks a filtered
// current run skipped.
func TestOneSidedBenchmarksAreReportedNotFatal(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]float64{
		"BenchmarkCoreStep/host": 70.0,
		"BenchmarkCoreStep/dsp":  70.0,
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]float64{
		"BenchmarkCoreStep/host": 70.0,
		"BenchmarkCoreStep/cmp":  70.0, // new backend, absent from baseline
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

// The -procs suffix varies with the runner's GOMAXPROCS and must not
// break name matching between captures from different machines.
func TestProcsSuffixStripped(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]float64{
		"BenchmarkCoreStep/host-8": 70.0,
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]float64{
		"BenchmarkCoreStep/host-16": 90.0,
	})
	if code := run([]string{base, cur}); code != 1 {
		t.Errorf("exit = %d, want 1 (suffix-stripped names should match and regress)", code)
	}
}

func TestBadInputsExit2(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	good := capture(t, filepath.Join(dir, "good.json"), map[string]float64{"BenchmarkX": 1})
	for _, args := range [][]string{
		{},     // no files
		{good}, // one file
		{good, filepath.Join(dir, "missing.json")},
		{empty, good}, // no benchmark results
	} {
		if code := run(args); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
