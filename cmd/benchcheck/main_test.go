package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture renders a minimal `go test -json` stream with one benchmark
// result per (name, metrics) pair, split across Output records the way
// test2json splits real streams (name in one record, numbers in the next).
// metrics maps unit -> value; ns/op is mandatory on real result lines so
// callers always include it.
func capture(t *testing.T, path string, results map[string]bench) string {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for name, metrics := range results {
		fmt.Fprintf(f, `{"Action":"output","Package":"p","Output":"%s         \t"}`+"\n", name)
		line := fmt.Sprintf("1000\\t        %.2f ns/op", metrics["ns/op"])
		for _, unit := range []string{"B/op", "allocs/op", "sim-instr/s", "phases/Minstr"} {
			if v, ok := metrics[unit]; ok {
				line += fmt.Sprintf("\\t       %.2f %s", v, unit)
			}
		}
		fmt.Fprintf(f, `{"Action":"output","Package":"p","Output":"%s\n"}`+"\n", line)
	}
	return path
}

// nsOnly is shorthand for a benchmark that reports just ns/op.
func nsOnly(ns float64) bench { return bench{"ns/op": ns} }

func TestWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkCoreStep/host": nsOnly(70.0),
		"BenchmarkCoreStep/nxp":  nsOnly(70.0),
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkCoreStep/host": nsOnly(80.0), // +14.3%, inside the 15% limit
		"BenchmarkCoreStep/nxp":  nsOnly(50.0), // improvement
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkCoreStep/host": nsOnly(70.0),
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkCoreStep/host": nsOnly(85.0), // +21.4%
	})
	if code := run([]string{base, cur}); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

// allocs/op is gated lower-is-better like ns/op but with an absolute
// slack: a big fractional jump on a tiny alloc count must not fail, while
// a real regression on a hot benchmark must.
func TestAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "allocs/op": 3598},
		"BenchmarkCoreStep/host":           {"ns/op": 70.0, "allocs/op": 2},
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "allocs/op": 3598},
		// +400% but only +8 absolute: inside allocSlack, must pass.
		"BenchmarkCoreStep/host": {"ns/op": 70.0, "allocs/op": 10},
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("small absolute alloc growth: exit = %d, want 0", code)
	}
	cur = capture(t, filepath.Join(dir, "cur2.json"), map[string]bench{
		// +39% and far beyond the absolute slack: must fail.
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "allocs/op": 5000},
		"BenchmarkCoreStep/host":           {"ns/op": 70.0, "allocs/op": 2},
	})
	if code := run([]string{base, cur}); code != 1 {
		t.Errorf("real alloc regression: exit = %d, want 1", code)
	}
}

// Throughput metrics (unit ending in "/s") are gated higher-is-better: a
// drop beyond the threshold fails, a rise never does.
func TestThroughputGate(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "sim-instr/s": 6.4e6},
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "sim-instr/s": 8.0e6}, // faster: fine
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("throughput gain: exit = %d, want 0", code)
	}
	cur = capture(t, filepath.Join(dir, "cur2.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "sim-instr/s": 4.0e6}, // -37.5%
	})
	if code := run([]string{base, cur}); code != 1 {
		t.Errorf("throughput drop: exit = %d, want 1", code)
	}
}

// Units outside the gated set (B/op, phases/Minstr) are informational:
// arbitrary swings must not fail the gate.
func TestUngatedUnitsNeverFail(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "B/op": 1000, "phases/Minstr": 100},
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "B/op": 90000, "phases/Minstr": 9000},
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("ungated unit swing: exit = %d, want 0", code)
	}
}

// A metric present only in the baseline (e.g. the record predates a
// ReportMetric removal) is skipped, not fatal.
func TestMetricDroppedFromCurrentIsSkipped(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": {"ns/op": 70.0, "sim-instr/s": 6.4e6},
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkSimParScaleOut/boards=4": nsOnly(70.0),
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

// A benchmark only present on one side must not fail the gate: a freshly
// added backend appears in the current capture before the checked-in
// baseline is refreshed, and the baseline may name benchmarks a filtered
// current run skipped.
func TestOneSidedBenchmarksAreReportedNotFatal(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkCoreStep/host": nsOnly(70.0),
		"BenchmarkCoreStep/dsp":  nsOnly(70.0),
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkCoreStep/host": nsOnly(70.0),
		"BenchmarkCoreStep/cmp":  nsOnly(70.0), // new backend, absent from baseline
	})
	if code := run([]string{base, cur}); code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

// The -procs suffix varies with the runner's GOMAXPROCS and must not
// break name matching between captures from different machines.
func TestProcsSuffixStripped(t *testing.T) {
	dir := t.TempDir()
	base := capture(t, filepath.Join(dir, "base.json"), map[string]bench{
		"BenchmarkCoreStep/host-8": nsOnly(70.0),
	})
	cur := capture(t, filepath.Join(dir, "cur.json"), map[string]bench{
		"BenchmarkCoreStep/host-16": nsOnly(90.0),
	})
	if code := run([]string{base, cur}); code != 1 {
		t.Errorf("exit = %d, want 1 (suffix-stripped names should match and regress)", code)
	}
}

// Scientific-notation metric values (testing prints large ReportMetric
// values as e.g. 1.77e+07) must parse.
func TestScientificNotationParses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sci.json")
	lines := []string{
		`{"Action":"output","Package":"p","Output":"BenchmarkSimParScaleOut/boards=1-8         \t"}`,
		`{"Action":"output","Package":"p","Output":"265\t   4402332 ns/op\t  1.77e+07 sim-instr/s\t 2870 allocs/op\n"}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readBench(path)
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkSimParScaleOut/boards=1"]
	if m == nil {
		t.Fatalf("benchmark name not found in %v", got)
	}
	if m["sim-instr/s"] != 1.77e+07 {
		t.Errorf("sim-instr/s = %v, want 1.77e+07", m["sim-instr/s"])
	}
	if m["allocs/op"] != 2870 {
		t.Errorf("allocs/op = %v, want 2870", m["allocs/op"])
	}
}

func TestBadInputsExit2(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	good := capture(t, filepath.Join(dir, "good.json"), map[string]bench{"BenchmarkX": nsOnly(1)})
	for _, args := range [][]string{
		{},     // no files
		{good}, // one file
		{good, filepath.Join(dir, "missing.json")},
		{empty, good}, // no benchmark results
	} {
		if code := run(args); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
