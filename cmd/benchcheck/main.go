// Command benchcheck compares two `go test -json` benchmark captures and
// fails when any benchmark present in both regressed beyond a threshold.
//
// Usage:
//
//	benchcheck [-threshold 0.15] baseline.json current.json
//
// The baseline is the checked-in hot-loop record (BENCH_hotloop.json); the
// current file is a fresh capture of the same benchmarks. Benchmarks only
// present on one side are reported but never fail the gate, so adding a
// backend (a new BenchmarkCoreStep sub-benchmark) does not break CI until
// the baseline is refreshed with `make bench-hotloop`. Exit codes: 0 all
// matched benchmarks within threshold, 1 regression, 2 usage/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// resultRE pulls one benchmark result out of the concatenated test2json
// output stream. The name keeps its sub-benchmark path but drops the
// trailing -procs suffix so captures from different GOMAXPROCS compare.
var resultRE = regexp.MustCompile(`(Benchmark[^\s-]\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.15, "maximum allowed fractional ns/op regression")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-threshold 0.15] baseline.json current.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := readBench(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		return 2
	}
	cur, err := readBench(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		was := base[name]
		now, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-40s baseline %8.2f ns/op, absent from current run\n", name, was)
			continue
		}
		delta := (now - was) / was
		verdict := "ok      "
		if delta > *threshold {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("%s %-40s %8.2f -> %8.2f ns/op  (%+.1f%%, limit +%.0f%%)\n",
			verdict, name, was, now, delta*100, *threshold*100)
	}
	for name, now := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("NEW      %-40s %8.2f ns/op (not in baseline; refresh with `make bench-hotloop`)\n", name, now)
		}
	}
	if failed {
		fmt.Printf("benchcheck: regression beyond %.0f%%\n", *threshold*100)
		return 1
	}
	return 0
}

// readBench parses a `go test -json` stream and returns ns/op keyed by
// benchmark name. test2json splits a single result line across several
// Output records, so the records are concatenated per package before the
// result regexp runs.
func readBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	text := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Action  string `json:"Action"`
			Package string `json:"Package"`
			Output  string `json:"Output"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json stream: %v", path, err)
		}
		if rec.Action != "output" {
			continue
		}
		b := text[rec.Package]
		if b == nil {
			b = &strings.Builder{}
			text[rec.Package] = b
		}
		b.WriteString(rec.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}

	out := make(map[string]float64)
	for _, b := range text {
		for _, m := range resultRE.FindAllStringSubmatch(b.String(), -1) {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad ns/op %q for %s", path, m[2], m[1])
			}
			out[m[1]] = ns
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}
