// Command benchcheck compares two `go test -json` benchmark captures and
// fails when any benchmark present in both regressed beyond a threshold.
//
// Usage:
//
//	benchcheck [-threshold 0.15] baseline.json current.json
//
// The baseline is the checked-in hot-loop record (BENCH_hotloop.json); the
// current file is a fresh capture of the same benchmarks. Benchmarks only
// present on one side are reported but never fail the gate, so adding a
// backend (a new BenchmarkCoreStep sub-benchmark) does not break CI until
// the baseline is refreshed with `make bench-hotloop`.
//
// Three kinds of metric are gated, per benchmark, when present in both
// captures:
//
//   - ns/op: lower is better; fails beyond the fractional threshold.
//   - allocs/op: lower is better; fails beyond the fractional threshold,
//     with a small absolute slack so single-digit alloc counts do not
//     trip the gate on one stray allocation.
//   - any metric whose unit ends in "/s" (e.g. the simulator's
//     sim-instr/s): higher is better; fails when the current capture
//     drops more than the threshold below the baseline.
//
// Other units (B/op, phases/Minstr, ...) are carried in the record and
// printed for diffing but never fail the gate. Exit codes: 0 all matched
// benchmarks within threshold, 1 regression, 2 usage/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// lineRE pulls one benchmark result line out of the concatenated
// test2json output stream: name, iteration count, then the metric list.
// The name keeps its sub-benchmark path but drops the trailing -procs
// suffix so captures from different GOMAXPROCS compare.
var lineRE = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// metricRE matches one "value unit" pair in a result line's metric list.
// Values may be scientific notation (testing prints large ReportMetric
// values as e.g. 1.77e+07).
var metricRE = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)\s+(\S+)`)

// allocSlack is the absolute allocs/op headroom granted on top of the
// fractional threshold: a benchmark at 10 allocs/op must not fail because
// a run picked up one incidental allocation.
const allocSlack = 16.0

// bench is one benchmark's metrics, keyed by unit ("ns/op", "allocs/op",
// "sim-instr/s", ...).
type bench map[string]float64

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.15, "maximum allowed fractional regression per gated metric")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-threshold 0.15] baseline.json current.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := readBench(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		return 2
	}
	cur, err := readBench(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		was := base[name]
		now, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-44s baseline %s, absent from current run\n", name, formatMetric(was["ns/op"], "ns/op"))
			continue
		}
		units := make([]string, 0, len(was))
		for unit := range was {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			b := was[unit]
			c, ok := now[unit]
			if !ok {
				continue // metric dropped from current capture: not gated
			}
			verdict, gated := check(unit, b, c, *threshold)
			if !gated {
				continue
			}
			if verdict != "ok      " {
				failed = true
			}
			delta := 0.0
			if b != 0 {
				delta = (c - b) / b * 100
			}
			fmt.Printf("%s %-44s %s -> %s  (%+.1f%%, limit %.0f%%)\n",
				verdict, name+" "+unit, formatMetric(b, unit), formatMetric(c, unit),
				delta, *threshold*100)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("NEW      %-44s %s (not in baseline; refresh with `make bench-hotloop`)\n",
				name, formatMetric(cur[name]["ns/op"], "ns/op"))
		}
	}
	if failed {
		fmt.Printf("benchcheck: regression beyond %.0f%%\n", *threshold*100)
		return 1
	}
	return 0
}

// check applies the gating rule for one metric and reports whether the
// unit is gated at all. Lower-is-better units fail when current exceeds
// baseline by more than the threshold (allocs/op additionally gets
// allocSlack absolute headroom); "/s" throughput units fail when current
// falls more than the threshold below baseline.
func check(unit string, base, cur, threshold float64) (verdict string, gated bool) {
	switch {
	case unit == "ns/op":
		if cur > base*(1+threshold) {
			return "REGRESSED", true
		}
	case unit == "allocs/op":
		if cur > base*(1+threshold) && cur > base+allocSlack {
			return "REGRESSED", true
		}
	case strings.HasSuffix(unit, "/s"):
		if cur < base*(1-threshold) {
			return "REGRESSED", true
		}
	default:
		return "", false
	}
	return "ok      ", true
}

func formatMetric(v float64, unit string) string {
	if v >= 1e6 {
		return fmt.Sprintf("%11.3g %s", v, unit)
	}
	return fmt.Sprintf("%11.2f %s", v, unit)
}

// readBench parses a `go test -json` stream and returns per-benchmark
// metric maps keyed by benchmark name. test2json splits a single result
// line across several Output records, so the records are concatenated per
// package before the result regexp runs.
func readBench(path string) (map[string]bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	text := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Action  string `json:"Action"`
			Package string `json:"Package"`
			Output  string `json:"Output"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json stream: %v", path, err)
		}
		if rec.Action != "output" {
			continue
		}
		b := text[rec.Package]
		if b == nil {
			b = &strings.Builder{}
			text[rec.Package] = b
		}
		b.WriteString(rec.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}

	out := make(map[string]bench)
	for _, b := range text {
		for _, m := range lineRE.FindAllStringSubmatch(b.String(), -1) {
			name, rest := m[1], m[2]
			metrics := out[name]
			if metrics == nil {
				metrics = bench{}
				out[name] = metrics
			}
			for _, mm := range metricRE.FindAllStringSubmatch(rest, -1) {
				v, err := strconv.ParseFloat(mm[1], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad value %q for %s %s", path, mm[1], name, mm[2])
				}
				metrics[mm[2]] = v
			}
			if _, ok := metrics["ns/op"]; !ok {
				return nil, fmt.Errorf("%s: result line for %s has no ns/op", path, name)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}
