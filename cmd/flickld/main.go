// Command flickld links Flick objects (.fobj from flickasm, or .fasm
// sources assembled on the fly) into one multi-ISA image and prints the
// image map: page-aligned per-ISA segments, the resolved symbol table, and
// the loader's NX markings.
//
// Usage:
//
//	flickld prog.fasm lib.fobj ...
//	flickld -entry start prog.fasm
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"flick/internal/asm"
	"flick/internal/core"
	"flick/internal/isa"
	"flick/internal/multibin"
)

func main() {
	entry := flag.String("entry", "main", "entry symbol")
	noRuntime := flag.Bool("no-runtime", false, "do not link the Flick runtime library")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: flickld [-entry sym] <file.fasm|file.fobj>...")
		os.Exit(2)
	}

	var objects []*multibin.Object
	for _, path := range flag.Args() {
		obj, err := loadInput(path)
		if err != nil {
			fatal(err)
		}
		objects = append(objects, obj)
	}
	if !*noRuntime {
		rt, err := asm.Assemble("flick_runtime.fasm", core.RuntimeSource)
		if err != nil {
			fatal(err)
		}
		objects = append(objects, rt)
	}

	im, err := multibin.Link(multibin.LinkConfig{
		Entry:         *entry,
		PerISASymbols: core.PerISASymbols,
	}, objects...)
	if err != nil {
		fatal(err)
	}
	printImage(im)
}

func loadInput(path string) (*multibin.Object, error) {
	if strings.HasSuffix(path, ".fobj") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var obj multibin.Object
		if err := gob.NewDecoder(f).Decode(&obj); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &obj, nil
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(path, string(src))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flickld:", err)
	os.Exit(1)
}

func printImage(im *multibin.Image) {
	fmt.Printf("entry %#x\n\n", im.Entry)
	fmt.Println("segments (loader NX marking in brackets):")
	for _, seg := range im.Segments {
		nx := "NX=1"
		if seg.Kind == multibin.SecText && isa.IsHost(seg.ISA) {
			nx = "NX=0"
		}
		note := ""
		if seg.Kind == multibin.SecText && !isa.IsHost(seg.ISA) {
			note = "  (host execution faults here → migration)"
		}
		fmt.Printf("  %-12s %v  [%#010x, %#010x)  %6d bytes  [%s]%s\n",
			seg.Name, seg.ISA, seg.VA, seg.End(), len(seg.Bytes), nx, note)
	}
	fmt.Println("\nsymbols:")
	names := make([]string, 0, len(im.Symbols))
	for n := range im.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return im.Symbols[names[i]] < im.Symbols[names[j]] })
	for _, n := range names {
		va := im.Symbols[n]
		loc := "data"
		if target, ok := im.TextISA(va); ok {
			loc = target.String() + " text"
		}
		fmt.Printf("  %#010x  %-28s %s\n", va, n, loc)
	}
}
