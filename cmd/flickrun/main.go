// Command flickrun builds a Flick assembly program and executes it on the
// simulated heterogeneous-ISA machine, printing the console output,
// virtual-time cost, and migration statistics.
//
// Usage:
//
//	flickrun prog.fasm [args...]           # args are uint64s passed in a0..a5
//	flickrun -trace 40 prog.fasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"flick"
)

func main() {
	entry := flag.String("entry", "main", "entry symbol")
	traceN := flag.Int("trace", 0, "print the last N simulation events")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: flickrun [-entry sym] [-trace N] <file.fasm> [args...]")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var args []uint64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseUint(a, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad argument %q: %w", a, err))
		}
		args = append(args, v)
	}

	sys, err := flick.Build(flick.Config{
		Sources:       map[string]string{path: string(src)},
		Entry:         *entry,
		TraceCapacity: max(*traceN*16, 0),
	})
	if err != nil {
		fatal(err)
	}
	ret, err := sys.RunProgram(*entry, args...)
	if out := sys.Console(); out != "" {
		fmt.Print(out)
		if out[len(out)-1] != '\n' {
			fmt.Println()
		}
	}
	if err != nil {
		fatal(err)
	}

	st := sys.Runtime.Stats()
	fmt.Printf("── %s returned %d after %v of virtual time\n", *entry, ret, sys.Now())
	fmt.Printf("── migrations: %d host→NxP calls, %d NxP→host calls (%d NX faults)\n",
		st.H2NCalls, st.N2HCalls, st.NXFaults)

	if *traceN > 0 {
		evs := sys.Machine.Env.Trace().Events()
		if len(evs) > *traceN {
			evs = evs[len(evs)-*traceN:]
		}
		fmt.Println("── trace tail:")
		for _, ev := range evs {
			fmt.Println("  ", ev)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flickrun:", err)
	os.Exit(1)
}
