// Command flickasm assembles Flick multi-ISA assembly into relocatable
// objects, or prints a listing.
//
// Usage:
//
//	flickasm -o prog.fobj prog.fasm        # assemble to a gob object file
//	flickasm -list prog.fasm               # print sections, symbols, code
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"

	"flick/internal/asm"
	"flick/internal/isa"
	"flick/internal/multibin"
)

func main() {
	out := flag.String("o", "", "output object file (.fobj)")
	list := flag.Bool("list", false, "print a listing instead of writing an object")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flickasm [-o out.fobj | -list] <file.fasm>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	obj, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	if *list {
		printListing(obj)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "flickasm: need -o or -list")
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(obj); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flickasm:", err)
	os.Exit(1)
}

func printListing(obj *multibin.Object) {
	for _, sec := range obj.Sections {
		fmt.Printf("section %s  (%s, %d bytes, align %d)\n", sec.Name, sec.ISA, len(sec.Bytes), sec.Align)
		for _, sym := range sec.Symbols {
			fmt.Printf("  symbol %-24s +%#06x  size %d\n", sym.Name, sym.Off, sym.Size)
			if sec.Kind == multibin.SecText {
				disassemble(sec, sym)
			}
		}
		for _, r := range sec.Relocs {
			fmt.Printf("  reloc  %-8v +%#06x width %d -> %s%+d\n", r.Kind, r.Off, r.Width, r.Symbol, r.Addend)
		}
	}
}

func disassemble(sec *multibin.Section, sym multibin.Symbol) {
	codec := isa.CodecFor(sec.ISA)
	for _, l := range isa.Disassemble(codec, sec.Bytes[sym.Off:sym.Off+sym.Size], sym.Off) {
		fmt.Printf("    %s\n", l)
	}
}
