package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run() in-process and returns exit code, stdout, stderr.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestNoArgsUsageExit2(t *testing.T) {
	code, stdout, stderr := runCLI(t)
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("usage leaked to stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "usage: flicksim") {
		t.Errorf("stderr missing usage:\n%s", stderr)
	}
}

func TestInvalidFlagExit2(t *testing.T) {
	code, _, stderr := runCLI(t, "-no-such-flag", "table3")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr does not name the bad flag:\n%s", stderr)
	}
}

func TestUnknownExperimentExit2(t *testing.T) {
	code, _, stderr := runCLI(t, "-iters", "2", "nonesuch")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown experiment "nonesuch"`) {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestTable3Smoke(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-iters", "2", "-jobs", "2", "-timeout", "2m", "table3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Table III") {
		t.Errorf("stdout missing artifact:\n%s", stdout)
	}
	if !strings.Contains(stderr, "start") || !strings.Contains(stderr, "done") {
		t.Errorf("progress lines missing from stderr:\n%s", stderr)
	}
}

func TestQuietSuppressesProgress(t *testing.T) {
	code, _, stderr := runCLI(t, "-iters", "2", "-quiet", "table3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "start") {
		t.Errorf("-quiet still printed progress:\n%s", stderr)
	}
}

func TestBadBoardsExit2(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-quiet", "-boards", "0", "table3")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("error output leaked to stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "-boards") || !strings.Contains(stderr, "usage: flicksim") {
		t.Errorf("stderr missing flag name or usage:\n%s", stderr)
	}
}

func TestBadBoardPolicyExit2(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-quiet", "-board-policy", "bogus", "table3")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("error output leaked to stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "bogus") || !strings.Contains(stderr, "usage: flicksim") {
		t.Errorf("stderr missing bad value or usage:\n%s", stderr)
	}
}

// TestBoardsOneIsNoOp is the seed-compatibility gate at the CLI layer: a
// single-board run with the flags spelled out must be byte-identical to
// the same invocation without them.
func TestBoardsOneIsNoOp(t *testing.T) {
	render := func(extra ...string) (string, []byte) {
		dir := t.TempDir()
		mPath := filepath.Join(dir, "m.json")
		args := append([]string{"-iters", "2", "-quiet", "-metrics-out", mPath}, extra...)
		args = append(args, "table3")
		code, stdout, stderr := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("args=%v exit = %d, stderr:\n%s", extra, code, stderr)
		}
		mb, err := os.ReadFile(mPath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout, mb
	}
	plainOut, plainMetrics := render()
	flagOut, flagMetrics := render("-boards", "1")
	if plainOut != flagOut {
		t.Errorf("-boards 1 changed stdout:\n%s\nvs\n%s", plainOut, flagOut)
	}
	if !bytes.Equal(plainMetrics, flagMetrics) {
		t.Errorf("-boards 1 changed the metrics JSON:\n%s\nvs\n%s", plainMetrics, flagMetrics)
	}
}

func TestScaleOutSmoke(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-iters", "2", "-quiet", "-board-policy", "least-loaded", "scaleout")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "board scale-out") {
		t.Errorf("stdout missing scale-out artifact:\n%s", stdout)
	}
	if !strings.Contains(stdout, "least-loaded") {
		t.Errorf("table note does not name the policy:\n%s", stdout)
	}
}

// TestMetricsAndTraceOut exercises the two output flags on a fast
// experiment and sanity-checks both files parse and carry real data.
func TestMetricsAndTraceOut(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "metrics.json")
	tPath := filepath.Join(dir, "trace.json")
	code, _, stderr := runCLI(t, "-iters", "2", "-quiet",
		"-metrics-out", mPath, "-trace-out", tPath, "table3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}

	mb, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Jobs     int               `json:"jobs"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(mb, &metrics); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if metrics.Jobs != 2 {
		t.Errorf("jobs = %d, want 2 (the two Table III phases)", metrics.Jobs)
	}
	for _, key := range []string{"kernel.migrations", "dma.transfers", "flick.h2n_calls"} {
		if metrics.Counters[key] == 0 {
			t.Errorf("counter %s is zero; counters:\n%s", key, mb)
		}
	}

	tb, err := os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb, &trace); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	var migrations int
	for _, ev := range trace.TraceEvents {
		if ev.Name == "migrate" {
			migrations++
		}
	}
	if migrations == 0 {
		t.Errorf("trace has no migrate events among %d events", len(trace.TraceEvents))
	}
}

// TestJobsDeterminism is the acceptance check: stdout, the metrics JSON,
// and the Chrome trace must be byte-identical whether the job graph runs
// serially or 8 workers wide.
func TestJobsDeterminism(t *testing.T) {
	render := func(jobs string) (string, []byte, []byte) {
		dir := t.TempDir()
		mPath := filepath.Join(dir, "m.json")
		tPath := filepath.Join(dir, "t.json")
		code, stdout, stderr := runCLI(t, "-iters", "2", "-quiet", "-jobs", jobs,
			"-metrics-out", mPath, "-trace-out", tPath, "table3", "tenants")
		if code != 0 {
			t.Fatalf("jobs=%s exit = %d, stderr:\n%s", jobs, code, stderr)
		}
		mb, err := os.ReadFile(mPath)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tPath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout, mb, tb
	}
	out1, m1, t1 := render("1")
	out8, m8, t8 := render("8")
	if out1 != out8 {
		t.Errorf("stdout differs between -jobs=1 and -jobs=8:\n%s\nvs\n%s", out1, out8)
	}
	if !bytes.Equal(m1, m8) {
		t.Errorf("metrics JSON differs between -jobs=1 and -jobs=8:\n%s\nvs\n%s", m1, m8)
	}
	if !bytes.Equal(t1, t8) {
		t.Errorf("chrome trace differs between -jobs=1 and -jobs=8")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpuOut := filepath.Join(dir, "cpu.pprof")
	memOut := filepath.Join(dir, "mem.pprof")
	code, stdout, stderr := runCLI(t,
		"-iters", "2", "-quiet", "-cpuprofile", cpuOut, "-memprofile", memOut, "table3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Table III") {
		t.Errorf("stdout missing artifact:\n%s", stdout)
	}
	for _, path := range []string{cpuOut, memOut} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
}

func TestBadCPUProfilePathExit1(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-iters", "2", "-quiet", "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "p"), "table3")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "-cpuprofile") {
		t.Errorf("stderr does not name the flag:\n%s", stderr)
	}
}

func TestListPrintsExperimentsAndISAs(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"experiments:", "fig5a", "table4", "scaleout", "soak",
		"isas:", "host", "nxp", "dsp", "cmp"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list output missing %q:\n%s", want, stdout)
		}
	}
	if stderr != "" {
		t.Errorf("-list wrote to stderr:\n%s", stderr)
	}
}

func TestBadBoardISAExit2(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-quiet", "-board-isa", "riscv", "table3")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("error output leaked to stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, `"riscv"`) || !strings.Contains(stderr, "usage: flicksim") {
		t.Errorf("stderr missing bad value or usage:\n%s", stderr)
	}
	// The valid vocabulary is part of the diagnostic.
	if !strings.Contains(stderr, "cmp") || !strings.Contains(stderr, "nxp") {
		t.Errorf("stderr does not list the registered board ISAs:\n%s", stderr)
	}
}

func TestTooManyBoardISAsExit2(t *testing.T) {
	code, _, stderr := runCLI(t, "-quiet", "-boards", "2", "-board-isa", "nxp,nxp,cmp", "table3")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-board-isa") || !strings.Contains(stderr, "usage: flicksim") {
		t.Errorf("stderr missing flag name or usage:\n%s", stderr)
	}
}

// TestBadFaultSpecExit2: a malformed -faults spec must be refused before
// any experiment runs — in particular the degenerate "delay by zero"
// clauses that used to parse silently to a no-op duration.
func TestBadFaultSpecExit2(t *testing.T) {
	for _, bad := range []string{
		"msi.delay=0.5:0us",  // zero duration
		"msi.delay=0.5:-5us", // negative duration
		"msi.delay=0.5",      // delay kind with no duration at all
		"dma.fail",           // grammar error
	} {
		code, stdout, stderr := runCLI(t, "-quiet", "-faults", bad, "table3")
		if code != 2 {
			t.Errorf("-faults %q: exit = %d, want 2", bad, code)
		}
		if stdout != "" {
			t.Errorf("-faults %q: error output leaked to stdout:\n%s", bad, stdout)
		}
		if !strings.Contains(stderr, "-faults") || !strings.Contains(stderr, "usage: flicksim") {
			t.Errorf("-faults %q: stderr missing flag name or usage:\n%s", bad, stderr)
		}
	}
}

// TestHostRejectedAsBoardISA: the host family is not a board family; the
// flag must reject it rather than build a machine with two hosts.
func TestHostRejectedAsBoardISA(t *testing.T) {
	code, _, stderr := runCLI(t, "-quiet", "-board-isa", "host", "table3")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, `"host"`) {
		t.Errorf("stderr = %q", stderr)
	}
}

// TestBoardISANxpIsNoOp extends the seed-compatibility gate: spelling out
// the default board family must not change a single artifact byte.
func TestBoardISANxpIsNoOp(t *testing.T) {
	render := func(extra ...string) string {
		args := append([]string{"-iters", "2", "-quiet"}, extra...)
		args = append(args, "table3")
		code, stdout, stderr := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
		}
		return stdout
	}
	plain := render()
	spelled := render("-board-isa", "nxp")
	if plain != spelled {
		t.Errorf("-board-isa nxp changed the artifact:\n--- plain ---\n%s\n--- spelled ---\n%s", plain, spelled)
	}
}
