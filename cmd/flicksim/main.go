// Command flicksim regenerates the paper's evaluation artifacts on the
// simulated platform.
//
// Usage:
//
//	flicksim [flags] <experiment>...
//	flicksim all
//
// Experiments: table2, table3, breakdown, latency, fig5a, fig5b, table4,
// stubs, tenants, kv. Extension modes outside 'all': scaleout, soak, and
// traffic (the open-loop SLO mode: -arrival/-rate/-duration/-slo, see
// docs/TRAFFIC.md).
//
// Each experiment expands into a graph of independent simulation jobs
// (one private machine per job) executed by -jobs parallel workers.
// Artifacts on stdout are byte-identical for every -jobs value; progress
// and timing go to stderr. -metrics-out and -trace-out additionally
// capture every job's metrics and typed event trace (see
// docs/OBSERVABILITY.md); those files too are byte-identical for every
// -jobs value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"flick/internal/experiments"
	"flick/internal/faultinj"
	"flick/internal/isa"
	"flick/internal/kernel"
	"flick/internal/platform"
	"flick/internal/runner"
	"flick/internal/sim"
	"flick/internal/stats"
)

// traceOutCap bounds the per-job event trace when -trace-out is set:
// enough for every migration event of a Quick run without letting a Full
// run hold the whole event stream in memory.
const traceOutCap = 1 << 16

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so the CLI is testable
// in-process: flags and experiment names in args, artifacts on stdout,
// progress and diagnostics on stderr. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flicksim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "paper-scale parameters (minutes of runtime)")
	scale := fs.Int("bfs-scale", 0, "override Table IV dataset divisor (1 = paper scale)")
	iters := fs.Int("iters", 0, "override averaging iteration count")
	jobs := fs.Int("jobs", runtime.NumCPU(), "parallel simulation jobs (1 = serial; results are identical either way)")
	timeout := fs.Duration("timeout", 0, "abort an experiment after this wall-clock duration (0 = no limit)")
	quiet := fs.Bool("quiet", false, "suppress per-job progress lines on stderr")
	metricsOut := fs.String("metrics-out", "", "write aggregated per-job metrics as JSON to this file")
	traceOut := fs.String("trace-out", "", "write per-job event traces as Chrome trace-event JSON to this file")
	faults := fs.String("faults", "", "fault-injection spec, e.g. 'dma.fail=0.05,msi.drop=0.1' (see docs/ROBUSTNESS.md)")
	faultSeed := fs.Int64("fault-seed", 0, "base seed for the fault-injection streams (0 = inherit the workload seed)")
	boards := fs.Int("boards", 1, "number of NxP boards per simulated machine (see docs/SCALING.md)")
	boardPolicy := fs.String("board-policy", "", "board placement policy: round-robin, least-loaded, or affinity (default round-robin)")
	boardISA := fs.String("board-isa", "", "comma-separated board core families, entry i → board i (registered backends; empty entries default to nxp; see docs/ISAS.md)")
	simPar := fs.Bool("sim-par", false, "conservative parallel intra-simulation execution across boards (results are byte-identical either way; see docs/SCALING.md)")
	arrival := fs.String("arrival", "", "traffic arrival shape: poisson or burst (default poisson; see docs/TRAFFIC.md)")
	rate := fs.Float64("rate", 0, "traffic offered load in tasks/s (0 = sweep a grid around the calibrated capacity)")
	duration := fs.Duration("duration", 8*time.Millisecond, "traffic admission window in virtual time")
	slo := fs.Duration("slo", 0, "traffic p99 sojourn SLO target; each run is judged PASS/FAIL (0 = no SLO)")
	list := fs.Bool("list", false, "list registered experiments and ISA backends, then exit")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (see docs/PERFORMANCE.md)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flicksim [flags] <experiment>...\n")
		fmt.Fprintf(stderr, "experiments: %s all soak scaleout traffic\n", strings.Join(experiments.IDs(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		printList(stdout)
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *boards < 1 {
		fmt.Fprintf(stderr, "flicksim: -boards %d: must be >= 1\n", *boards)
		fs.Usage()
		return 2
	}
	if _, err := kernel.ParseBoardPolicy(*boardPolicy); err != nil {
		fmt.Fprintf(stderr, "flicksim: -board-policy: %v\n", err)
		fs.Usage()
		return 2
	}
	boardISAs, err := platform.ParseBoardISAs(*boardISA, *boards)
	if err != nil {
		fmt.Fprintf(stderr, "flicksim: -board-isa: %v\n", err)
		fs.Usage()
		return 2
	}
	if _, err := faultinj.Parse(*faults); err != nil {
		fmt.Fprintf(stderr, "flicksim: -faults: %v\n", err)
		fs.Usage()
		return 2
	}

	// Profiling hooks for perf work: -cpuprofile samples the whole run,
	// -memprofile snapshots the heap after the final experiment. Both are
	// inert when unset.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "flicksim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "flicksim: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "flicksim: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "flicksim: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	o := experiments.Quick()
	if *full {
		o = experiments.Full()
	}
	if *scale > 0 {
		o.BFSScale = *scale
	}
	if *iters > 0 {
		o.NullCallIters = *iters
		o.BFSIters = *iters
	}
	o.Jobs = *jobs
	o.Timeout = *timeout
	o.Faults = *faults
	o.FaultSeed = *faultSeed
	o.Boards = *boards
	o.BoardPolicy = *boardPolicy
	o.BoardISAs = boardISAs
	o.SimPar = *simPar
	if !*quiet {
		o.Progress = func(e runner.Event) { progress(stderr, e) }
	}
	if *metricsOut != "" || *traceOut != "" {
		traceCap := 0
		if *traceOut != "" {
			traceCap = traceOutCap
		}
		o.Obs = stats.NewObs(traceCap)
	}

	ids := fs.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		// scaleout is not a registry experiment (it is a multi-board
		// extension, not a paper artifact, so "all" does not include it).
		if id == "scaleout" {
			start := time.Now()
			t, err := experiments.ScaleOut(o)
			if err != nil {
				fmt.Fprintf(stderr, "flicksim: scaleout: %v\n", err)
				return 1
			}
			t.Render(stdout)
			fmt.Fprintln(stdout)
			fmt.Fprintf(stderr, "  [scaleout regenerated in %.1fs wall time, %d jobs wide]\n",
				time.Since(start).Seconds(), o.Jobs)
			continue
		}
		// traffic is not a registry experiment (it is the open-loop SLO
		// mode, not a paper artifact, so "all" does not include it).
		if id == "traffic" {
			start := time.Now()
			topt := experiments.TrafficOptions{
				Arrival: *arrival,
				Rate:    *rate,
				Window:  sim.FromStd(*duration),
				SLO:     sim.FromStd(*slo),
			}
			if err := experiments.Traffic(o, topt, stdout); err != nil {
				fmt.Fprintf(stderr, "flicksim: traffic: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout)
			fmt.Fprintf(stderr, "  [traffic regenerated in %.1fs wall time, %d jobs wide]\n",
				time.Since(start).Seconds(), o.Jobs)
			continue
		}
		// soak is not a registry experiment (it is a robustness gate, not a
		// paper artifact, so "all" does not include it).
		if id == "soak" {
			start := time.Now()
			if err := experiments.Soak(o, stdout); err != nil {
				fmt.Fprintf(stderr, "flicksim: soak: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout)
			fmt.Fprintf(stderr, "  [soak passed in %.1fs wall time, %d jobs wide]\n",
				time.Since(start).Seconds(), o.Jobs)
			continue
		}
		r, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(stderr, "flicksim: unknown experiment %q\n", id)
			return 2
		}
		start := time.Now()
		if err := r.Run(o, stdout); err != nil {
			fmt.Fprintf(stderr, "flicksim: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintln(stdout)
		fmt.Fprintf(stderr, "  [%s regenerated in %.1fs wall time, %d jobs wide]\n",
			id, time.Since(start).Seconds(), o.Jobs)
	}

	if *metricsOut != "" {
		if err := writeFile(*metricsOut, o.Obs.WriteMetricsJSON); err != nil {
			fmt.Fprintf(stderr, "flicksim: -metrics-out: %v\n", err)
			return 1
		}
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, o.Obs.WriteChromeTrace); err != nil {
			fmt.Fprintf(stderr, "flicksim: -trace-out: %v\n", err)
			return 1
		}
	}
	return 0
}

// printList reports what this build can simulate: every registry
// experiment plus the extension runs, and every ISA backend the binary
// registered (the -board-isa vocabulary).
func printList(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, id := range experiments.IDs() {
		fmt.Fprintf(w, "  %s\n", id)
	}
	fmt.Fprintln(w, "  scaleout  (multi-board extension; not part of 'all')")
	fmt.Fprintln(w, "  soak      (robustness gate; not part of 'all')")
	fmt.Fprintln(w, "  traffic   (open-loop SLO mode; not part of 'all')")
	fmt.Fprintln(w, "isas:")
	for _, be := range isa.All() {
		role := "board"
		if be.Host() {
			role = "host"
		}
		fmt.Fprintf(w, "  %-5s id=%d  %-5s  func-align=%d\n", be.Name(), be.ISA(), role, be.FuncAlign())
	}
}

// writeFile creates path and streams one serializer into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// progress prints per-job lifecycle lines so long Full() runs are
// observable. Stderr only: stdout carries nothing but the artifacts.
func progress(w io.Writer, e runner.Event) {
	if e.Err != nil {
		fmt.Fprintf(w, "  [%d/%d] FAIL  %-36s %6.2fs  %v\n",
			e.Finished, e.Total, e.Name, e.Elapsed.Seconds(), e.Err)
		return
	}
	if e.Done {
		fmt.Fprintf(w, "  [%d/%d] done  %-36s %6.2fs\n",
			e.Finished, e.Total, e.Name, e.Elapsed.Seconds())
	} else {
		fmt.Fprintf(w, "  [%d/%d] start %s\n", e.Started, e.Total, e.Name)
	}
}
