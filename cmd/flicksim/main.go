// Command flicksim regenerates the paper's evaluation artifacts on the
// simulated platform.
//
// Usage:
//
//	flicksim [flags] <experiment>...
//	flicksim all
//
// Experiments: table2, table3, breakdown, latency, fig5a, fig5b, table4,
// stubs, tenants, kv.
//
// Each experiment expands into a graph of independent simulation jobs
// (one private machine per job) executed by -jobs parallel workers.
// Artifacts on stdout are byte-identical for every -jobs value; progress
// and timing go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"flick/internal/experiments"
	"flick/internal/runner"
)

func main() {
	full := flag.Bool("full", false, "paper-scale parameters (minutes of runtime)")
	scale := flag.Int("bfs-scale", 0, "override Table IV dataset divisor (1 = paper scale)")
	iters := flag.Int("iters", 0, "override averaging iteration count")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation jobs (1 = serial; results are identical either way)")
	timeout := flag.Duration("timeout", 0, "abort an experiment after this wall-clock duration (0 = no limit)")
	quiet := flag.Bool("quiet", false, "suppress per-job progress lines on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flicksim [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %s all\n", strings.Join(experiments.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	o := experiments.Quick()
	if *full {
		o = experiments.Full()
	}
	if *scale > 0 {
		o.BFSScale = *scale
	}
	if *iters > 0 {
		o.NullCallIters = *iters
		o.BFSIters = *iters
	}
	o.Jobs = *jobs
	o.Timeout = *timeout
	if !*quiet {
		o.Progress = progress
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		r, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "flicksim: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if err := r.Run(o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "flicksim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Fprintf(os.Stderr, "  [%s regenerated in %.1fs wall time, %d jobs wide]\n",
			id, time.Since(start).Seconds(), o.Jobs)
	}
}

// progress prints per-job lifecycle lines so long Full() runs are
// observable. Stderr only: stdout carries nothing but the artifacts.
func progress(e runner.Event) {
	if e.Err != nil {
		fmt.Fprintf(os.Stderr, "  [%d/%d] FAIL  %-36s %6.2fs  %v\n",
			e.Finished, e.Total, e.Name, e.Elapsed.Seconds(), e.Err)
		return
	}
	if e.Done {
		fmt.Fprintf(os.Stderr, "  [%d/%d] done  %-36s %6.2fs\n",
			e.Finished, e.Total, e.Name, e.Elapsed.Seconds())
	} else {
		fmt.Fprintf(os.Stderr, "  [%d/%d] start %s\n", e.Started, e.Total, e.Name)
	}
}
