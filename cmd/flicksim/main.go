// Command flicksim regenerates the paper's evaluation artifacts on the
// simulated platform.
//
// Usage:
//
//	flicksim [flags] <experiment>...
//	flicksim all
//
// Experiments: table2, table3, table4, fig5a, fig5b, latency, stubs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flick/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "paper-scale parameters (minutes of runtime)")
	scale := flag.Int("bfs-scale", 0, "override Table IV dataset divisor (1 = paper scale)")
	iters := flag.Int("iters", 0, "override averaging iteration count")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flicksim [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: table2 table3 table4 fig5a fig5b latency breakdown stubs tenants kv all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	o := experiments.Quick()
	if *full {
		o = experiments.Full()
	}
	if *scale > 0 {
		o.BFSScale = *scale
	}
	if *iters > 0 {
		o.NullCallIters = *iters
		o.BFSIters = *iters
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table2", "table3", "breakdown", "latency", "fig5a", "fig5b", "table4", "stubs", "tenants", "kv"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := runOne(id, o); err != nil {
			fmt.Fprintf(os.Stderr, "flicksim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s regenerated in %.1fs wall time]\n\n", id, time.Since(start).Seconds())
	}
}

func runOne(id string, o experiments.Options) error {
	switch id {
	case "table2":
		t, err := experiments.Table2(o)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "table3":
		t, _, err := experiments.Table3(o)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "table4":
		t, _, err := experiments.Table4(o)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "fig5a":
		c, err := experiments.Fig5a(o)
		if err != nil {
			return err
		}
		c.Render(os.Stdout, 72, 18)
	case "fig5b":
		c, err := experiments.Fig5b(o)
		if err != nil {
			return err
		}
		c.Render(os.Stdout, 72, 18)
	case "breakdown":
		t, err := experiments.Breakdown(o)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "latency":
		t, err := experiments.Latency(o)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "stubs":
		experiments.StubAblation().Render(os.Stdout)
	case "tenants":
		t, err := experiments.Tenants(o)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "kv":
		t, err := experiments.KVStore(o)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
