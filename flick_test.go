package flick_test

import (
	"strings"
	"testing"

	"flick"
	"flick/internal/platform"
	"flick/internal/sim"
)

func TestBuildRejectsBadSource(t *testing.T) {
	_, err := flick.Build(flick.Config{
		Sources: map[string]string{"bad.fasm": "frobnicate a0"},
	})
	if err == nil || !strings.Contains(err.Error(), "bad.fasm") {
		t.Errorf("err = %v, want assembler diagnostic with filename", err)
	}
}

func TestBuildRejectsMissingEntry(t *testing.T) {
	_, err := flick.Build(flick.Config{
		Sources: map[string]string{"a.fasm": ".func notmain isa=host\n halt\n.endfunc"},
	})
	if err == nil || !strings.Contains(err.Error(), "main") {
		t.Errorf("err = %v", err)
	}
}

func TestCustomEntry(t *testing.T) {
	sys, err := flick.Build(flick.Config{
		Sources: map[string]string{"a.fasm": ".func start isa=host\n movi a0, 9\n halt\n.endfunc"},
		Entry:   "start",
	})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := sys.RunProgram("start")
	if err != nil || ret != 9 {
		t.Errorf("ret = %d, %v", ret, err)
	}
}

func TestDeterministicLinkAcrossSourceMaps(t *testing.T) {
	// Multiple source files in a map: layout must be deterministic
	// regardless of map iteration order.
	build := func() uint64 {
		sys, err := flick.Build(flick.Config{
			Sources: map[string]string{
				"zz.fasm": ".func zfn isa=host\n ret\n.endfunc",
				"aa.fasm": ".func main isa=host\n halt\n.endfunc",
				"mm.fasm": ".func mfn isa=nxp\n ret\n.endfunc",
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Image.Symbols["mfn"]
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("link layout not deterministic: %#x vs %#x", got, first)
		}
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() sim.Time {
		sys := flick.MustBuild(flick.Config{
			Sources: map[string]string{"a.fasm": `
.func main isa=host
    movi t0, 5
l:
    call f
    addi t0, t0, -1
    bne t0, zr, l
    halt
.endfunc
.func f isa=nxp
    addi a0, a0, 1
    ret
.endfunc
`},
		})
		if _, err := sys.RunProgram("main"); err != nil {
			t.Fatal(err)
		}
		return sys.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("virtual time not reproducible: %v vs %v", got, first)
		}
	}
}

func TestSymbolAndStartValidation(t *testing.T) {
	sys := flick.MustBuild(flick.Config{
		Sources: map[string]string{"a.fasm": `
.func main isa=host
    halt
.endfunc
.func nfn isa=nxp
    ret
.endfunc
`},
	})
	if _, err := sys.Symbol("main"); err != nil {
		t.Error(err)
	}
	if _, err := sys.Symbol("ghost"); err == nil {
		t.Error("ghost symbol resolved")
	}
	if _, err := sys.Start("ghost"); err == nil {
		t.Error("started thread at missing symbol")
	}
	if _, err := sys.Start("nfn"); err == nil {
		t.Error("started thread on NxP text")
	}
}

func TestCustomMachineParams(t *testing.T) {
	params := platform.DefaultParams()
	params.NxPDDR = 128 << 20
	sys, err := flick.Build(flick.Config{
		Params:  &params,
		Sources: map[string]string{"a.fasm": ".func main isa=host\n halt\n.endfunc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.NxPDDR.Size() != 128<<20 {
		t.Error("params override lost")
	}
	if _, err := sys.RunProgram("main"); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCapacityOption(t *testing.T) {
	sys := flick.MustBuild(flick.Config{
		Sources: map[string]string{"a.fasm": `
.func main isa=host
    call f
    halt
.endfunc
.func f isa=nxp
    ret
.endfunc
`},
		TraceCapacity: 32,
	})
	if _, err := sys.RunProgram("main"); err != nil {
		t.Fatal(err)
	}
	if len(sys.Machine.Env.Trace().Filter(sim.KindFault)) == 0 {
		t.Error("trace recorded no fault events")
	}
}

func TestTraceCapacityPrecedence(t *testing.T) {
	src := map[string]string{"a.fasm": ".func main isa=host\n halt\n.endfunc"}
	// An explicit TraceCapacity wins even when smaller than the Observer's
	// request.
	sys := flick.MustBuild(flick.Config{
		Sources:       src,
		TraceCapacity: 8,
		Obs:           &sim.Observer{TraceCap: 64},
	})
	if got := sys.Machine.Env.Trace().Cap(); got != 8 {
		t.Errorf("explicit TraceCapacity overridden: cap = %d, want 8", got)
	}
	// With TraceCapacity unset, the Observer's capacity applies.
	sys = flick.MustBuild(flick.Config{
		Sources: src,
		Obs:     &sim.Observer{TraceCap: 64},
	})
	if got := sys.Machine.Env.Trace().Cap(); got != 64 {
		t.Errorf("observer capacity ignored: cap = %d, want 64", got)
	}
}

func TestDeadlockErrorNamesStuckTasks(t *testing.T) {
	// A program that loses its migration wakeup must surface through the
	// public API as a Deadlocked error that names the stuck task, not as a
	// silent hang or an anonymous process list.
	sys := flick.MustBuild(flick.Config{
		Sources: map[string]string{"a.fasm": `
.func main isa=host
    call fastfn
    halt
.endfunc
.func fastfn isa=nxp
    ret
.endfunc
`},
	})
	// Recreate the §IV-D lost-wakeup race deterministically: fire the
	// descriptor DMA before suspension and make descheduling slower than
	// the NxP round trip.
	sys.Kernel.EagerDMATrigger = true
	costs := sys.Kernel.Costs()
	costs.ContextSwitchAway = 500 * sim.Microsecond
	sys.Kernel.SetCosts(costs)
	_, err := sys.RunProgram("main")
	if err == nil {
		t.Fatal("lost-wakeup run returned no error")
	}
	for _, want := range []string{"deadlocked", "main", "pid 1", "suspended"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err = %v, want it to mention %q", err, want)
		}
	}
}

func TestPreassembledObjects(t *testing.T) {
	// The Objects field accepts pre-assembled inputs alongside sources.
	sys := flick.MustBuild(flick.Config{
		Sources: map[string]string{
			"main.fasm": ".func main isa=host\n call lib\n halt\n.endfunc",
			"lib.fasm":  ".func lib isa=host\n movi a0, 31\n ret\n.endfunc",
		},
	})
	ret, err := sys.RunProgram("main")
	if err != nil || ret != 31 {
		t.Errorf("ret = %d, %v", ret, err)
	}
}
