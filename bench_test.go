// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), plus ablations of the design choices called out in DESIGN.md §5.
//
// Reported metrics are *virtual-time* results from the simulated platform
// (µs of migration overhead, normalized performance, speedups); the wall
// time Go reports per iteration is merely the cost of running the
// simulation. Set FLICK_FULL=1 for paper-scale parameters (minutes).
package flick_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"flick"
	"flick/internal/baseline"
	"flick/internal/experiments"
	"flick/internal/platform"
	"flick/internal/sim"
	"flick/internal/workloads"
)

func opts() experiments.Options {
	if os.Getenv("FLICK_FULL") != "" {
		return experiments.Full()
	}
	o := experiments.Quick()
	// Benchmarks iterate b.N times; keep single runs brisk.
	o.NullCallIters = 300
	o.BFSScale = 64
	return o
}

// BenchmarkTable3_HostNxPHost regenerates Table III's first column: the
// average host→NxP→host null-call round trip (paper: 18.3 µs).
func BenchmarkTable3_HostNxPHost(b *testing.B) {
	o := opts()
	var last workloads.NullCallResult
	for i := 0; i < b.N; i++ {
		r, err := workloads.RunNullCall(workloads.NullCallConfig{Iterations: o.NullCallIters})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HostNxPHost.Microseconds(), "virt-µs/roundtrip")
	b.ReportMetric(18.3, "paper-µs/roundtrip")
}

// BenchmarkTable3_NxPHostNxP regenerates Table III's second column
// (paper: 16.9 µs).
func BenchmarkTable3_NxPHostNxP(b *testing.B) {
	o := opts()
	var last workloads.NullCallResult
	for i := 0; i < b.N; i++ {
		r, err := workloads.RunNullCall(workloads.NullCallConfig{Iterations: o.NullCallIters})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.NxPHostNxP.Microseconds(), "virt-µs/roundtrip")
	b.ReportMetric(16.9, "paper-µs/roundtrip")
}

// BenchmarkTable2_SpeedupOverPriorWork regenerates Table II: Flick's
// measured round trip against the published overheads of prior
// heterogeneous-ISA migration systems (paper: 23x-38x).
func BenchmarkTable2_SpeedupOverPriorWork(b *testing.B) {
	o := opts()
	var flickRT sim.Duration
	for i := 0; i < b.N; i++ {
		r, err := workloads.RunNullCall(workloads.NullCallConfig{Iterations: o.NullCallIters})
		if err != nil {
			b.Fatal(err)
		}
		flickRT = r.HostNxPHost
	}
	for _, w := range baseline.Table2Rows {
		// Metric units must be whitespace-free; use the venue token.
		name, _, _ := strings.Cut(w.Name, " ")
		b.ReportMetric(baseline.SpeedupOver(w, flickRT), "x-vs-"+name)
	}
}

// BenchmarkFig5a regenerates Figure 5a's three curves at representative
// x positions; the full-resolution sweep is `flicksim fig5a`.
func BenchmarkFig5a(b *testing.B) {
	points := []int{8, 32, 128, 512}
	var flickPts, slowPts []workloads.PointerChasePoint
	for i := 0; i < b.N; i++ {
		var err error
		flickPts, err = workloads.SweepPointerChase(points, 3, 0, false, 42)
		if err != nil {
			b.Fatal(err)
		}
		slowPts, err = workloads.SweepPointerChase(points, 2, 500*sim.Microsecond, false, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, p := range flickPts {
		b.ReportMetric(p.Normalized, fmt.Sprintf("flick-norm@%d", p.Nodes))
		b.ReportMetric(slowPts[i].Normalized, fmt.Sprintf("slow500µs-norm@%d", p.Nodes))
	}
}

// BenchmarkFig5b regenerates Figure 5b (one migration per 100 µs).
func BenchmarkFig5b(b *testing.B) {
	points := []int{8, 32, 128, 512}
	var pts []workloads.PointerChasePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = workloads.SweepPointerChase(points, 3, 0, true, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Normalized, fmt.Sprintf("flick-norm@%d", p.Nodes))
	}
}

// benchTable4 runs one Table IV row and reports baseline/Flick seconds and
// the speedup (paper: 0.75x / 1.19x / 1.09x).
func benchTable4(b *testing.B, d workloads.Dataset, paperSpeedup float64) {
	o := opts()
	ds := d.Scale(o.BFSScale)
	var row workloads.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = workloads.RunTable4Row(ds, o.BFSIters, o.Seed, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Baseline.Seconds(), "virt-s-baseline")
	b.ReportMetric(row.Flick.Seconds(), "virt-s-flick")
	b.ReportMetric(row.Speedup, "x-speedup")
	b.ReportMetric(paperSpeedup, "x-paper")
}

func BenchmarkTable4_Epinions1(b *testing.B)    { benchTable4(b, workloads.Epinions1, 0.75) }
func BenchmarkTable4_Pokec(b *testing.B)        { benchTable4(b, workloads.Pokec, 1.19) }
func BenchmarkTable4_LiveJournal1(b *testing.B) { benchTable4(b, workloads.LiveJournal1, 1.09) }

// BenchmarkAccessLatency regenerates the §V access-latency measurements
// (paper: 825 ns host→NxP storage, 267 ns NxP local).
func BenchmarkAccessLatency(b *testing.B) {
	var r workloads.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = workloads.MeasureLatencies(500, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.HostToNxPStorage.Nanoseconds(), "virt-ns-host-to-nxp")
	b.ReportMetric(r.NxPToLocalStorage.Nanoseconds(), "virt-ns-nxp-local")
	b.ReportMetric(r.HostPageFault.Microseconds(), "virt-µs-pagefault")
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkAblation_DescriptorDMAvsPIO compares the paper's single-burst
// descriptor DMA against programmed I/O, where the NxP reads each
// descriptor word across PCIe.
func BenchmarkAblation_DescriptorDMAvsPIO(b *testing.B) {
	o := opts()
	runOnce := func(pio bool) sim.Duration {
		sys := flick.MustBuild(flick.Config{
			Sources: map[string]string{"null.fasm": `
.func main isa=host
    mov t5, a0
    call f
    sys 4
    mov t4, a0
l:
    call f
    addi t5, t5, -1
    bne t5, zr, l
    sys 4
    sub a0, a0, t4
    halt
.endfunc
.func f isa=nxp
    ret
.endfunc
`},
		})
		sys.Runtime.SetPIODescriptors(pio)
		ns, err := sys.RunProgram("main", uint64(o.NullCallIters))
		if err != nil {
			b.Fatal(err)
		}
		return sim.Duration(ns) * sim.Nanosecond / sim.Duration(o.NullCallIters)
	}
	var dma, pio sim.Duration
	for i := 0; i < b.N; i++ {
		dma = runOnce(false)
		pio = runOnce(true)
	}
	b.ReportMetric(dma.Microseconds(), "virt-µs-dma")
	b.ReportMetric(pio.Microseconds(), "virt-µs-pio")
	b.ReportMetric(pio.Microseconds()-dma.Microseconds(), "virt-µs-pio-penalty")
}

// BenchmarkAblation_HugePages compares the paper's 1 GiB-page NxP data
// window against 2 MiB pages: random pointer chasing then misses the
// 16-entry NxP TLB constantly, and every miss walks host-resident page
// tables across PCIe.
func BenchmarkAblation_HugePages(b *testing.B) {
	run := func(pageSize uint64) sim.Duration {
		params := platform.DefaultParams()
		params.NxPWindowPage = pageSize
		d, err := workloads.RunPointerChase(workloads.PointerChaseConfig{
			Nodes: 256, Calls: 3, Mode: workloads.ChaseFlick, Params: &params,
		})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	var huge, small sim.Duration
	for i := 0; i < b.N; i++ {
		huge = run(0)        // default: 1 GiB pages
		small = run(2 << 20) // 2 MiB pages
	}
	b.ReportMetric(huge.Microseconds(), "virt-µs-1GiB-pages")
	b.ReportMetric(small.Microseconds(), "virt-µs-2MiB-pages")
	b.ReportMetric(float64(small)/float64(huge), "x-slowdown-small-pages")
}

// BenchmarkAblation_NXFaultVsStubs reports the §III-B analysis: the
// break-even point between fault-triggered and stub-triggered migration.
func BenchmarkAblation_NXFaultVsStubs(b *testing.B) {
	m := baseline.DefaultStubModel()
	var nx, stub sim.Duration
	for i := 0; i < b.N; i++ {
		nx, stub = m.ProgramOverhead(1000, 1)
	}
	b.ReportMetric(nx.Microseconds(), "virt-µs-nx@1000calls")
	b.ReportMetric(stub.Microseconds(), "virt-µs-stub@1000calls")
	b.ReportMetric(m.BreakEvenCallRatio(), "calls-breakeven")
}

// BenchmarkAblation_BFSWithoutVisitMigration quantifies what Table IV's
// per-vertex host call costs the Flick BFS.
func BenchmarkAblation_BFSWithoutVisitMigration(b *testing.B) {
	o := opts()
	d := workloads.Epinions1.Scale(o.BFSScale)
	var with, without workloads.BFSResult
	for i := 0; i < b.N; i++ {
		var err error
		with, err = workloads.RunBFS(workloads.BFSConfig{Dataset: d, Iterations: 1, Seed: o.Seed})
		if err != nil {
			b.Fatal(err)
		}
		without, err = workloads.RunBFS(workloads.BFSConfig{Dataset: d, Iterations: 1, Seed: o.Seed, SkipVisitCall: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.PerIter.Seconds(), "virt-s-with-call")
	b.ReportMetric(without.PerIter.Seconds(), "virt-s-without")
}

// BenchmarkSimulatorThroughput measures the simulator itself: interpreted
// instructions per wall second (not a paper artifact).
func BenchmarkSimulatorThroughput(b *testing.B) {
	sys := flick.MustBuild(flick.Config{
		Sources: map[string]string{"spin.fasm": `
.func main isa=host
    ; a0 = iterations
l:
    addi a0, a0, -1
    bne a0, zr, l
    halt
.endfunc
`},
	})
	b.ResetTimer()
	task, err := sys.Start("main", uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Run(); err != nil || task.Err != nil {
		b.Fatal(err, task.Err)
	}
}

// BenchmarkAblation_TransparencyCost compares Flick's transparent
// fault-triggered migration against explicit offload-style submission of
// the same job: the difference is what the NX fault + handler hijack cost
// (§III-B's argument that transparency is nearly free).
func BenchmarkAblation_TransparencyCost(b *testing.B) {
	var r baseline.OffloadComparison
	for i := 0; i < b.N; i++ {
		var err error
		r, err = baseline.RunOffloadComparison(200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Flick.Microseconds(), "virt-µs-flick")
	b.ReportMetric(r.Offload.Microseconds(), "virt-µs-offload")
	b.ReportMetric(r.TransparencyCost.Microseconds(), "virt-µs-transparency")
}

// BenchmarkScaleOut measures board scale-out: eight migrating host
// threads spread their calls across 1, 2, and 4 NxP boards under the
// kernel's round-robin placement. The metric is aggregate migrated calls
// per virtual second versus board count.
func BenchmarkScaleOut(b *testing.B) {
	run := func(boards int) float64 {
		total, calls, err := workloads.RunScaleOut(8, 12, boards, "", nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		return float64(calls) / total.Seconds()
	}
	var one, two, four float64
	for i := 0; i < b.N; i++ {
		one = run(1)
		two = run(2)
		four = run(4)
	}
	b.ReportMetric(one, "virt-calls/s-1board")
	b.ReportMetric(two, "virt-calls/s-2boards")
	b.ReportMetric(four, "virt-calls/s-4boards")
	b.ReportMetric(four/one, "x-scaling-4boards")
}

// BenchmarkMultiTenantNxP measures board contention: several host threads
// (one per host core) share the single NxP through Flick migrations. The
// metric is aggregate migrated calls per virtual second versus tenants.
func BenchmarkMultiTenantNxP(b *testing.B) {
	src := `
.func main isa=host
    movi t4, 20
l:
    call nxp_job
    addi t4, t4, -1
    bne  t4, zr, l
    movi a0, 0
    sys  1
.endfunc
.func nxp_job isa=nxp
    li   t0, 1000
w:
    addi t0, t0, -1
    bne  t0, zr, w
    ret
.endfunc
`
	run := func(tenants int) float64 {
		params := platform.DefaultParams()
		params.HostCores = tenants
		sys := flick.MustBuild(flick.Config{Params: &params, Sources: map[string]string{"mt.fasm": src}})
		for i := 0; i < tenants; i++ {
			if _, err := sys.Start("main"); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		calls := float64(sys.Runtime.Stats().H2NCalls)
		return calls / (float64(sys.Now()) / float64(sim.Second))
	}
	var one, four float64
	for i := 0; i < b.N; i++ {
		one = run(1)
		four = run(4)
	}
	b.ReportMetric(one, "virt-calls/s-1tenant")
	b.ReportMetric(four, "virt-calls/s-4tenants")
	b.ReportMetric(four/one, "x-aggregate-scaling")
}

// BenchmarkSchedulerSpeedup measures the wall-clock effect of the job
// scheduler's -jobs knob on Figure 5a (the widest job graph: 3 lines x
// len(ChasePoints) independent machines). Results are byte-identical at
// every width (TestAllDeterministicAcrossWorkerCounts); on a multi-core
// machine wall time per op should drop roughly linearly until the graph
// width or core count saturates. ns/op is the whole-figure wall time.
func BenchmarkSchedulerSpeedup(b *testing.B) {
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			o := opts()
			o.Jobs = jobs
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig5a(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimParScaleOut measures the conservative parallel engine's
// scale-out throughput in simulated instructions per wall second: the same
// multi-board scale-out workload, built with Params.SimPar, at growing
// board counts. Virtual-time results are byte-identical to the sequential
// engine (TestSimParDifferentialScaleOut); what should grow with boards —
// on a multi-core host — is how fast the simulator chews through board
// instructions, because each board's compute windows run as concurrent
// phase members. On a single-core host the numbers degenerate to the
// sequential engine's throughput plus a small phase-bookkeeping tax.
func BenchmarkSimParScaleOut(b *testing.B) {
	for _, boards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("boards=%d", boards), func(b *testing.B) {
			var instr, phases uint64
			for i := 0; i < b.N; i++ {
				p := platform.DefaultParams()
				p.SimPar = true
				var snap sim.Snapshot
				obs := &sim.Observer{
					OnReport: func(r sim.Report) { snap = r.Metrics },
					OnSimPar: func(sp sim.SimParStats) { phases += sp.Phases },
				}
				if _, _, err := workloads.RunScaleOut(8, 12, boards, "", &p, obs); err != nil {
					b.Fatal(err)
				}
				for _, c := range snap.Counters {
					if strings.HasSuffix(c.Name, ".instret") {
						instr += c.Value
					}
				}
			}
			b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
			// Phase-batching ratio: fewer, fatter phases per instruction is
			// the whole point of the round-extended scheduler. Reported per
			// million simulated instructions so the number stays readable.
			if instr > 0 {
				b.ReportMetric(float64(phases)/(float64(instr)/1e6), "phases/Minstr")
			}
		})
	}
}
